//! Shared metrics primitives: fixed-bound histograms plus a named
//! registry of counters, gauges, and histograms with a Prometheus-style
//! text exposition.
//!
//! One [`Histogram`] implementation serves the whole workspace — the
//! per-frontend parse-time histograms in the manifest, the
//! representation-frequency and constraint-gap distributions, and any
//! future metric with fixed bucket bounds. The registry keeps metrics in
//! insertion order so that serialization (and the exposition text) is
//! deterministic, and each metric carries a `volatile` flag telling
//! [`MetricsRegistry::redact`] whether the value depends on wall-clock
//! time or machine state (timings, memory) or is a pure function of the
//! input corpus (counts, rates).

use crate::json::Json;
use crate::manifest::ManifestError;
use std::collections::HashMap;

/// A fixed-bound histogram: `bounds.len() + 1` buckets, where bucket `i`
/// counts observations `<= bounds[i]` (exclusive of earlier buckets) and
/// the final bucket counts everything above the last bound.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper bucket bounds, strictly increasing. Observations equal to a
    /// bound land in that bound's bucket (Prometheus `le` semantics).
    pub bounds: Vec<f64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1` (the last
    /// slot is the overflow bucket).
    pub counts: Vec<u64>,
    /// Sum of all observed values (for mean reconstruction).
    pub sum: f64,
}

impl Histogram {
    /// An empty histogram over the given bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram { bounds: bounds.to_vec(), counts: vec![0; bounds.len() + 1], sum: 0.0 }
    }

    /// An empty histogram over integer bounds (convenience for
    /// microsecond/byte scales).
    pub fn with_u64_bounds(bounds: &[u64]) -> Histogram {
        let bounds: Vec<f64> = bounds.iter().map(|&b| b as f64).collect();
        Histogram::new(&bounds)
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.sum += value;
    }

    /// Total number of observations across all buckets.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Whether any observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Collapses to a deterministic shape: the total lands in the first
    /// bucket, every other bucket and the sum go to zero. Used by
    /// redaction for value-dependent (volatile) histograms, mirroring the
    /// parse-histogram redaction rule from schema v4.
    pub fn collapse(&mut self) {
        let total = self.total();
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.counts[0] = total;
        self.sum = 0.0;
    }

    /// Serializes as `{"bounds": [...], "counts": [...], "sum": n}`.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("bounds".into(), Json::Arr(self.bounds.iter().map(|&b| Json::Num(b)).collect())),
            ("counts".into(), Json::Arr(self.counts.iter().map(|&c| Json::Num(c as f64)).collect())),
            ("sum".into(), Json::num(self.sum)),
        ])
    }

    /// Parses the [`Histogram::to_json`] shape, validating the bucket
    /// arity invariant.
    pub fn from_json(v: &Json) -> Result<Histogram, ManifestError> {
        let bounds: Vec<f64> = req_num_arr(v, "bounds")?;
        let counts_f = req_num_arr(v, "counts")?;
        if bounds.is_empty() || bounds.windows(2).any(|w| w[0] >= w[1]) {
            return Err(ManifestError::Schema(
                "histogram bounds must be non-empty and strictly increasing".into(),
            ));
        }
        if counts_f.len() != bounds.len() + 1 {
            return Err(ManifestError::Schema(format!(
                "histogram has {} counts for {} bounds (want bounds + 1)",
                counts_f.len(),
                bounds.len()
            )));
        }
        let mut counts = Vec::with_capacity(counts_f.len());
        for c in &counts_f {
            if *c < 0.0 || c.fract() != 0.0 {
                return Err(ManifestError::Schema("histogram counts must be non-negative integers".into()));
            }
            counts.push(*c as u64);
        }
        let sum = v
            .get("sum")
            .and_then(Json::as_f64)
            .ok_or_else(|| ManifestError::Schema("histogram missing numeric `sum`".into()))?;
        Ok(Histogram { bounds, counts, sum })
    }
}

fn req_num_arr(v: &Json, key: &str) -> Result<Vec<f64>, ManifestError> {
    let arr = v
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| ManifestError::Schema(format!("histogram missing array `{key}`")))?;
    arr.iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| ManifestError::Schema(format!("non-numeric entry in histogram `{key}`")))
        })
        .collect()
}

/// The value payload of one registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotone count of events.
    Counter(f64),
    /// A point-in-time measurement.
    Gauge(f64),
    /// A fixed-bound distribution.
    Histogram(Histogram),
}

impl MetricValue {
    fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// One named metric with help text and a redaction class.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name (`[a-z0-9_]+`, without the exposition prefix).
    pub name: String,
    /// One-line human description (the `# HELP` text).
    pub help: String,
    /// Whether the value depends on wall-clock time or machine state and
    /// must be zeroed/collapsed by [`MetricsRegistry::redact`].
    pub volatile: bool,
    /// The value payload.
    pub value: MetricValue,
}

/// An insertion-ordered registry of named metrics.
///
/// Names are unique; re-registering a name accumulates into the existing
/// metric (counters add, gauges overwrite, histograms observe).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: Vec<Metric>,
    index: HashMap<String, usize>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn slot(&mut self, name: &str, help: &str, volatile: bool, init: MetricValue) -> &mut Metric {
        let idx = *self.index.entry(name.to_string()).or_insert_with(|| {
            self.metrics.push(Metric {
                name: name.to_string(),
                help: help.to_string(),
                volatile,
                value: init,
            });
            self.metrics.len() - 1
        });
        &mut self.metrics[idx]
    }

    /// Adds `delta` to the named counter, creating it at zero first.
    pub fn inc_counter(&mut self, name: &str, help: &str, volatile: bool, delta: f64) {
        let m = self.slot(name, help, volatile, MetricValue::Counter(0.0));
        match &mut m.value {
            MetricValue::Counter(v) => *v += delta,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// Sets the named gauge, creating it if absent.
    pub fn set_gauge(&mut self, name: &str, help: &str, volatile: bool, value: f64) {
        let m = self.slot(name, help, volatile, MetricValue::Gauge(0.0));
        match &mut m.value {
            MetricValue::Gauge(v) => *v = value,
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// Records one observation into the named histogram, creating it over
    /// `bounds` if absent.
    pub fn observe(&mut self, name: &str, help: &str, volatile: bool, bounds: &[f64], value: f64) {
        let m = self.slot(name, help, volatile, MetricValue::Histogram(Histogram::new(bounds)));
        match &mut m.value {
            MetricValue::Histogram(h) => h.observe(value),
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// Inserts a pre-built histogram under the given name (replacing any
    /// existing metric of that name).
    pub fn put_histogram(&mut self, name: &str, help: &str, volatile: bool, hist: Histogram) {
        let m = self.slot(name, help, volatile, MetricValue::Histogram(Histogram::new(&hist.bounds)));
        m.value = MetricValue::Histogram(hist);
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.index.get(name).map(|&i| &self.metrics[i])
    }

    /// All metrics in insertion order.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Zeroes volatile counters/gauges and collapses volatile histograms
    /// (total into the first bucket), leaving deterministic metrics
    /// untouched. Mirrors [`crate::RunManifest::redact_timings`].
    pub fn redact(&mut self) {
        for m in &mut self.metrics {
            if !m.volatile {
                continue;
            }
            match &mut m.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => *v = 0.0,
                MetricValue::Histogram(h) => h.collapse(),
            }
        }
    }

    /// Renders the registry as Prometheus text exposition format, with
    /// every metric name prefixed by `prefix` (e.g. `seldon_`).
    pub fn to_prometheus(&self, prefix: &str) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            let name = format!("{prefix}{}", m.name);
            out.push_str(&format!("# HELP {name} {}\n", m.help));
            out.push_str(&format!("# TYPE {name} {}\n", m.value.kind()));
            match &m.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    out.push_str(&format!("{name} {}\n", fmt_num(*v)));
                }
                MetricValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for (i, &bound) in h.bounds.iter().enumerate() {
                        cum += h.counts[i];
                        out.push_str(&format!("{name}_bucket{{le=\"{}\"}} {cum}\n", fmt_num(bound)));
                    }
                    cum += h.counts[h.bounds.len()];
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cum}\n"));
                    out.push_str(&format!("{name}_sum {}\n", fmt_num(h.sum)));
                    out.push_str(&format!("{name}_count {cum}\n"));
                }
            }
        }
        out
    }

    /// Serializes as a JSON array of metric objects, insertion-ordered.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.metrics
                .iter()
                .map(|m| {
                    let mut fields = vec![
                        ("name".into(), Json::Str(m.name.clone())),
                        ("help".into(), Json::Str(m.help.clone())),
                        ("kind".into(), Json::Str(m.value.kind().into())),
                        ("volatile".into(), Json::Bool(m.volatile)),
                    ];
                    match &m.value {
                        MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                            fields.push(("value".into(), Json::num(*v)));
                        }
                        MetricValue::Histogram(h) => {
                            if let Json::Obj(hf) = h.to_json() {
                                fields.extend(hf);
                            }
                        }
                    }
                    Json::Obj(fields)
                })
                .collect(),
        )
    }

    /// Parses the [`MetricsRegistry::to_json`] shape, rejecting duplicate
    /// names and unknown kinds.
    pub fn from_json(v: &Json) -> Result<MetricsRegistry, ManifestError> {
        let arr = v
            .as_arr()
            .ok_or_else(|| ManifestError::Schema("`metrics` must be an array".into()))?;
        let mut reg = MetricsRegistry::new();
        for item in arr {
            let name = req_str(item, "name")?;
            let help = req_str(item, "help")?;
            let kind = req_str(item, "kind")?;
            let volatile = item
                .get("volatile")
                .and_then(Json::as_bool)
                .ok_or_else(|| ManifestError::Schema(format!("metric `{name}` missing bool `volatile`")))?;
            if reg.index.contains_key(&name) {
                return Err(ManifestError::Schema(format!("duplicate metric `{name}`")));
            }
            let value = match kind.as_str() {
                "counter" | "gauge" => {
                    let v = item.get("value").and_then(Json::as_f64).ok_or_else(|| {
                        ManifestError::Schema(format!("metric `{name}` missing numeric `value`"))
                    })?;
                    if kind == "counter" { MetricValue::Counter(v) } else { MetricValue::Gauge(v) }
                }
                "histogram" => MetricValue::Histogram(Histogram::from_json(item)?),
                other => {
                    return Err(ManifestError::Schema(format!(
                        "metric `{name}` has unknown kind `{other}`"
                    )))
                }
            };
            reg.index.insert(name.clone(), reg.metrics.len());
            reg.metrics.push(Metric { name, help, volatile, value });
        }
        Ok(reg)
    }
}

fn req_str(v: &Json, key: &str) -> Result<String, ManifestError> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ManifestError::Schema(format!("metric missing string `{key}`")))
}

/// Formats a float without a trailing `.0` for integral values, matching
/// the JSON number emitter.
fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.007_199_254_740_992e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_inclusive_bound() {
        let mut h = Histogram::new(&[10.0, 100.0]);
        h.observe(5.0);
        h.observe(10.0); // on the bound: lands in the first bucket (le semantics)
        h.observe(50.0);
        h.observe(1000.0); // overflow
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.sum, 1065.0);
    }

    #[test]
    fn histogram_collapse_is_deterministic() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.observe(0.5);
        h.observe(1.5);
        h.observe(9.0);
        h.collapse();
        assert_eq!(h.counts, vec![3, 0, 0]);
        assert_eq!(h.sum, 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn histogram_json_round_trip_and_arity_check() {
        let mut h = Histogram::with_u64_bounds(&[50, 100]);
        h.observe(60.0);
        let back = Histogram::from_json(&h.to_json()).unwrap();
        assert_eq!(back, h);

        let bad = crate::json::parse(r#"{"bounds": [1, 2], "counts": [0, 0], "sum": 0}"#).unwrap();
        assert!(Histogram::from_json(&bad).is_err(), "counts must be bounds + 1");
    }

    #[test]
    fn registry_accumulates_and_keeps_insertion_order() {
        let mut reg = MetricsRegistry::new();
        reg.inc_counter("cache_hits", "cache hits", false, 3.0);
        reg.set_gauge("hit_rate", "hit rate", false, 0.5);
        reg.inc_counter("cache_hits", "cache hits", false, 2.0);
        reg.observe("gap", "constraint gap", false, &[0.0, 1.0], 0.5);
        assert_eq!(reg.len(), 3);
        let names: Vec<&str> = reg.metrics().iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["cache_hits", "hit_rate", "gap"]);
        assert_eq!(reg.get("cache_hits").unwrap().value, MetricValue::Counter(5.0));
    }

    #[test]
    fn registry_json_round_trip() {
        let mut reg = MetricsRegistry::new();
        reg.inc_counter("files", "files analyzed", false, 7.0);
        reg.set_gauge("epoch_us", "mean epoch time", true, 123.5);
        reg.observe("rep_freq", "rep frequency", false, &[1.0, 10.0], 4.0);
        let back = MetricsRegistry::from_json(&reg.to_json()).unwrap();
        assert_eq!(back, reg);
    }

    #[test]
    fn registry_rejects_duplicates_and_unknown_kinds() {
        let dup = crate::json::parse(
            r#"[{"name": "x", "help": "h", "kind": "counter", "volatile": false, "value": 1},
                {"name": "x", "help": "h", "kind": "counter", "volatile": false, "value": 2}]"#,
        )
        .unwrap();
        assert!(MetricsRegistry::from_json(&dup).is_err());
        let bad = crate::json::parse(
            r#"[{"name": "x", "help": "h", "kind": "summary", "volatile": false, "value": 1}]"#,
        )
        .unwrap();
        assert!(MetricsRegistry::from_json(&bad).is_err());
    }

    #[test]
    fn redact_zeroes_only_volatile_metrics() {
        let mut reg = MetricsRegistry::new();
        reg.inc_counter("files", "files", false, 7.0);
        reg.set_gauge("epoch_us", "epoch", true, 42.0);
        reg.observe("parse_us", "parse", true, &[10.0, 20.0], 15.0);
        reg.observe("rep_freq", "freq", false, &[1.0, 10.0], 3.0);
        reg.redact();
        assert_eq!(reg.get("files").unwrap().value, MetricValue::Counter(7.0));
        assert_eq!(reg.get("epoch_us").unwrap().value, MetricValue::Gauge(0.0));
        match &reg.get("parse_us").unwrap().value {
            MetricValue::Histogram(h) => assert_eq!((h.counts.clone(), h.sum), (vec![1, 0, 0], 0.0)),
            _ => unreachable!(),
        }
        match &reg.get("rep_freq").unwrap().value {
            MetricValue::Histogram(h) => {
                assert_eq!((h.counts.clone(), h.sum), (vec![0, 1, 0], 3.0), "untouched")
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn prometheus_exposition_has_cumulative_buckets() {
        let mut reg = MetricsRegistry::new();
        reg.inc_counter("cache_hits", "Total cache hits.", false, 5.0);
        reg.observe("gap", "Constraint gap.", false, &[0.5, 1.0], 0.25);
        reg.observe("gap", "Constraint gap.", false, &[0.5, 1.0], 0.75);
        reg.observe("gap", "Constraint gap.", false, &[0.5, 1.0], 2.0);
        let text = reg.to_prometheus("seldon_");
        assert!(text.contains("# HELP seldon_cache_hits Total cache hits.\n"));
        assert!(text.contains("# TYPE seldon_cache_hits counter\nseldon_cache_hits 5\n"));
        assert!(text.contains("seldon_gap_bucket{le=\"0.5\"} 1\n"));
        assert!(text.contains("seldon_gap_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("seldon_gap_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("seldon_gap_sum 3\n"));
        assert!(text.contains("seldon_gap_count 3\n"));
    }
}
