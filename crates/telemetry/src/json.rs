//! A minimal JSON value with a writer and a recursive-descent parser.
//!
//! The build environment is offline (no serde); this module implements
//! exactly the subset the telemetry subsystem needs: finite numbers,
//! strings, booleans, `null`, arrays, and objects with *ordered* keys.
//! Non-finite floats serialize as `null` (JSON has no NaN/∞) and parse
//! back as NaN, which keeps the manifest valid JSON even for degenerate
//! solver runs.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Objects preserve insertion order so emitted manifests
/// are deterministic and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number value; non-finite inputs become [`Json::Null`].
    pub fn num(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The value of key `k` if this is an object containing it.
    pub fn get(&self, k: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(key, _)| key == k).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number behind this value; `null` reads as NaN (the writer's
    /// encoding of non-finite numbers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes compactly (no whitespace).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => write_number(out, *v),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Writes `v` in Rust's shortest round-trippable decimal form; non-finite
/// values (which [`Json::num`] never produces) fall back to `null`.
fn write_number(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 2f64.powi(53) {
        // Integral values print without the trailing `.0` Rust would add.
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses `input` into a [`Json`] value, requiring the whole input to be
/// consumed (trailing whitespace allowed).
///
/// # Errors
///
/// Returns a [`JsonError`] on malformed input.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        let mut seen: BTreeMap<String, ()> = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if seen.insert(key.clone(), ()).is_some() {
                return Err(self.err(&format!("duplicate key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Copy the maximal run of unescaped bytes in one append. `"`
            // and `\` are ASCII and so never occur inside a multi-byte
            // UTF-8 sequence, so the run always ends on a char boundary.
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            if self.pos > start {
                let run = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?;
                out.push_str(run);
            }
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(_) => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not produced by our writer;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { offset: start, message: format!("bad number `{text}`") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_pretty_and_compact() {
        let v = Json::Obj(vec![
            ("name".into(), Json::str("seldon \"run\"\n")),
            ("count".into(), Json::num(42.0)),
            ("ratio".into(), Json::num(0.1)),
            ("flag".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            ("list".into(), Json::Arr(vec![Json::num(1.0), Json::num(-2.5)])),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        assert_eq!(parse(&v.pretty()).unwrap(), v);
        assert_eq!(parse(&v.compact()).unwrap(), v);
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for v in [0.0, 1.0, -3.5, 0.1, 1e-12, 19.3, f64::MAX, 2f64.powi(60)] {
            let s = Json::num(v).compact();
            let Json::Num(back) = parse(&s).unwrap() else { panic!("not a number: {s}") };
            assert_eq!(back, v, "{s}");
        }
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(Json::num(f64::NAN), Json::Null);
        assert_eq!(Json::num(f64::INFINITY), Json::Null);
        assert!(parse("null").unwrap().as_f64().unwrap().is_nan());
    }

    #[test]
    fn parse_errors_carry_offsets() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("{\"a\":1,\"a\":2}").is_err(), "duplicate keys rejected");
    }

    #[test]
    fn accessors() {
        let v = parse("{\"a\": [1, true, \"x\"], \"b\": 7}").unwrap();
        assert_eq!(v.get("b").and_then(Json::as_u64), Some(7));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[1].as_bool(), Some(true));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
    }
}
