//! # seldon-telemetry
//!
//! Offline, dependency-free pipeline telemetry for the Seldon
//! reproduction: hierarchical stage spans with counters, stderr logging,
//! solver convergence samples, and the machine-readable [`RunManifest`]
//! (with a Chrome trace-event export) that every instrumented run emits.
//!
//! The subsystem follows the same rules as `compat/`: no network, no
//! external crates, and a disabled handle costs nothing — not even a
//! clock read — so the zero-telemetry pipeline path stays as fast as the
//! uninstrumented code.
//!
//! ## Example
//!
//! ```
//! use seldon_telemetry::{stage, Telemetry};
//!
//! let tele = Telemetry::recording();
//! {
//!     let span = tele.span(stage::UNION);
//!     // ... work ...
//!     span.counter("events", 42.0);
//! }
//! let spans = tele.take_spans();
//! assert_eq!(spans[0].name, stage::UNION);
//! ```

#![warn(missing_docs)]

pub mod bench;
pub mod diff;
pub mod json;
pub mod manifest;
pub mod memory;
pub mod metrics;
pub mod span;

pub use bench::{BenchRecord, MIN_BENCH_SCHEMA_VERSION};
pub use diff::{diff_bench, diff_manifests, DiffOptions, DiffReport};
pub use manifest::{
    stage, CacheSummary, ConstraintSummary, CorpusShape, EpochSample, ExtractionSummary,
    ManifestError, MemorySummary, OutcomeCounts, ParseHistogram, RunManifest, ScoreDumpEntry,
    SolverSummary, StageSpan, TaintSummary, PARSE_HIST_BOUNDS, SCHEMA_VERSION,
};
pub use memory::{CountingAlloc, MemSnapshot, MemoryGauge};
pub use metrics::{Histogram, Metric, MetricValue, MetricsRegistry};
pub use span::{Level, SpanGuard, SpanRecord, Telemetry};
