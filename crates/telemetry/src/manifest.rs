//! The machine-readable run manifest (the `--telemetry` output).
//!
//! One [`RunManifest`] captures everything §7 of the paper reports per
//! run: corpus shape, per-stage spans with counters, the solver's
//! convergence curve, per-template constraint counts, the extraction
//! threshold/backoff sweep, and the learned-spec summary. The same schema
//! backs the `BENCH_*.json` bench history, so bench entries are a
//! byproduct of any instrumented run.
//!
//! Serialization is hand-rolled over [`crate::json`] (the workspace is
//! offline; there is no serde). [`RunManifest::from_json`] performs full
//! schema validation — every required field must be present with the
//! right type — and `from_json(to_json(m)) == m` holds for any manifest
//! with finite numbers.

use crate::json::{self, Json, JsonError};
use crate::metrics::{Histogram, MetricsRegistry};
use crate::span::SpanRecord;
use std::fmt;

/// Version tag of the manifest schema emitted by this build.
///
/// Version 2 added [`SolverSummary::threads`] and the `compile` child
/// span under `solve`. Version 3 added the `cache` section
/// ([`CacheSummary`]), the optional `cache` stage span, and the
/// `parse.project` / `union.shard` child spans. Version 4 added the
/// `parse_histograms` section ([`ParseHistogram`]) — per-frontend
/// per-file parse-time buckets. Version 5 added the `memory` section
/// ([`MemorySummary`]), the per-span `mem_now_bytes` / `mem_peak_bytes`
/// fields, the `metrics` registry ([`MetricsRegistry`]), and the opt-in
/// `score_dump` section ([`ScoreDumpEntry`], Fig. 11 data). Version 6
/// added the solver `stop_reason` / `epochs_saved` fields
/// ([`SolverSummary`]) recording the convergence early-exit outcome.
/// Version 7 added the `mode` field ([`RunManifest::mode`]) recording
/// whether the run was a one-shot batch (`"batch"`) or served by the
/// incremental daemon (`"served-incremental"`); v6 manifests parse
/// leniently with the mode defaulting to `"batch"`.
pub const SCHEMA_VERSION: u64 = 7;

/// Upper bounds (inclusive, microseconds) of the per-file parse-time
/// histogram buckets. A file lands in the first bucket whose bound its
/// parse time does not exceed; slower files land in the overflow slot.
pub const PARSE_HIST_BOUNDS: [u64; 8] = [50, 100, 250, 500, 1000, 2500, 5000, 10_000];

/// Histogram of per-file parse times for one language frontend.
///
/// A thin frontend-labelled wrapper over the shared
/// [`Histogram`] with [`PARSE_HIST_BOUNDS`] bounds; the final
/// slot counts files slower than the last bound. Only files that
/// actually ran the front end are recorded — cache-served files skip
/// parsing entirely and contribute nothing. The JSON shape keeps the v4
/// `{"frontend": ..., "counts": [...]}` fields (bounds implied) and adds
/// the histogram's `sum` (total microseconds) in v5.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseHistogram {
    /// Frontend label (`"python"`, `"js"`).
    pub frontend: String,
    /// The underlying distribution over [`PARSE_HIST_BOUNDS`].
    pub hist: Histogram,
}

impl ParseHistogram {
    /// An empty histogram for one frontend.
    pub fn new(frontend: impl Into<String>) -> ParseHistogram {
        ParseHistogram {
            frontend: frontend.into(),
            hist: Histogram::with_u64_bounds(&PARSE_HIST_BOUNDS),
        }
    }

    /// A histogram with pre-filled bucket counts (test fixtures and
    /// deserialization).
    pub fn with_counts(
        frontend: impl Into<String>,
        counts: [u64; PARSE_HIST_BOUNDS.len() + 1],
    ) -> ParseHistogram {
        let mut h = ParseHistogram::new(frontend);
        h.hist.counts = counts.to_vec();
        h
    }

    /// Tallies one file's parse time (microseconds) into its bucket.
    pub fn record(&mut self, micros: u64) {
        self.hist.observe(micros as f64);
    }

    /// Per-bucket counts (`PARSE_HIST_BOUNDS.len() + 1` slots).
    pub fn counts(&self) -> &[u64] {
        &self.hist.counts
    }

    /// Total files recorded.
    pub fn total(&self) -> u64 {
        self.hist.total()
    }
}

/// Canonical stage names of the end-to-end pipeline, in pipeline order.
pub mod stage {
    /// Per-file parsing (front end), aggregated across workers.
    pub const PARSE: &str = "parse";
    /// Per-file propagation-graph construction, aggregated across workers.
    pub const PROPGRAPH: &str = "propgraph";
    /// Sharded union of per-file graphs into the global graph.
    pub const UNION: &str = "union";
    /// Representation/backoff selection (§4.3 cutoff + blacklist).
    pub const REPRESENTATION: &str = "representation";
    /// Flow-constraint collection (Fig. 4 templates).
    pub const CONSTRAINTS: &str = "constraints";
    /// Projected-Adam solving of the relaxed system.
    pub const SOLVE: &str = "solve";
    /// Specification extraction (§7.1 threshold/backoff rule).
    pub const EXTRACT: &str = "extract";
    /// Taint analysis with the learned specification.
    pub const TAINT: &str = "taint";
    /// CSR lowering of the constraint system — a child span of
    /// [`SOLVE`], not one of the eight top-level stages in [`ALL`].
    pub const COMPILE: &str = "compile";
    /// Artifact-cache lookups/stores. Only present when a run has a cache
    /// attached, so not part of [`ALL`].
    pub const CACHE: &str = "cache";
    /// Per-project parse time — child spans of [`PARSE`], one per project.
    pub const PARSE_PROJECT: &str = "parse.project";
    /// Per-shard union time — child spans of [`UNION`], one per shard of a
    /// multi-threaded union.
    pub const UNION_SHARD: &str = "union.shard";
    /// All eight stages in pipeline order.
    pub const ALL: [&str; 8] = [
        PARSE,
        PROPGRAPH,
        UNION,
        REPRESENTATION,
        CONSTRAINTS,
        SOLVE,
        EXTRACT,
        TAINT,
    ];
}

/// One sampled epoch of the solver's convergence trace.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpochSample {
    /// 0-based Adam iteration index.
    pub epoch: u64,
    /// Full objective (hinge loss + λ·‖x‖₁) at this epoch.
    pub objective: f64,
    /// Total hinge loss (sum of positive constraint gaps).
    pub hinge_loss: f64,
    /// Number of violated constraints (positive gap).
    pub violated: u64,
    /// L2 norm of the full gradient.
    pub grad_norm: f64,
    /// Learning rate in effect (scaled after a divergence restart).
    pub lr: f64,
}

/// Shape of the analyzed corpus and global graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CorpusShape {
    /// Corpus files offered to the pipeline.
    pub files: u64,
    /// Projects the files belong to.
    pub projects: u64,
    /// Events in the global propagation graph.
    pub events: u64,
    /// Flow edges in the global propagation graph.
    pub edges: u64,
    /// Distinct representation symbols interned process-wide.
    pub symbols: u64,
}

/// Per-file fault/budget outcomes folded in from the analysis report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OutcomeCounts {
    /// Files analyzed strictly.
    pub ok: u64,
    /// Files recovered leniently.
    pub recovered: u64,
    /// Files quarantined on parse failure.
    pub skipped: u64,
    /// Files quarantined on budget trips.
    pub over_budget: u64,
    /// Files whose analysis panicked (contained).
    pub panicked: u64,
}

/// One pipeline stage span as exported in the manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSpan {
    /// Stage name (see [`stage`]).
    pub name: String,
    /// Index of the enclosing span, if nested.
    pub parent: Option<u32>,
    /// Nesting depth.
    pub depth: u32,
    /// Microseconds from run start to span start.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Live heap bytes when the span closed (0 if unrecorded).
    pub mem_now_bytes: u64,
    /// Allocator high-water mark when the span closed — monotone across
    /// the run, so consecutive stages report a non-decreasing peak.
    pub mem_peak_bytes: u64,
    /// Counters recorded on the span, in record order.
    pub counters: Vec<(String, f64)>,
}

impl From<SpanRecord> for StageSpan {
    fn from(s: SpanRecord) -> StageSpan {
        StageSpan {
            name: s.name.to_string(),
            parent: s.parent,
            depth: s.depth,
            start_us: s.start_us,
            dur_us: s.dur_us,
            mem_now_bytes: s.mem_now_bytes,
            mem_peak_bytes: s.mem_peak_bytes,
            counters: s.counters.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        }
    }
}

/// Constraint-system shape, by Fig. 4 template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConstraintSummary {
    /// Total flow constraints.
    pub total: u64,
    /// Role variables.
    pub vars: u64,
    /// Variables pinned by the seed.
    pub pinned: u64,
    /// Constraints per template `[4a, 4b, 4c]`.
    pub by_template: [u64; 3],
}

/// Solver outcome plus its sampled convergence curve.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SolverSummary {
    /// Adam iterations actually run.
    pub iterations: u64,
    /// Divergence-guard restarts taken (0 or 1).
    pub restarts: u64,
    /// Whether the run diverged (scores were sanitized).
    pub diverged: bool,
    /// Learning rate of the final (possibly restarted) run.
    pub final_lr: f64,
    /// Final objective value.
    pub objective: f64,
    /// Final total hinge violation.
    pub violation: f64,
    /// Worker threads the epoch passes ran on (≥ 1). Scores are
    /// byte-identical across thread counts; this records cost, not
    /// result shape.
    pub threads: u64,
    /// Why the run stopped (`"max_iters"`, `"stall"`, `"plateau"`,
    /// `"diverged"`, `"invalid_options"`). Stored as a string so this
    /// crate stays independent of the solver crate; empty when unknown
    /// (pre-v6 manifests).
    pub stop_reason: String,
    /// Epochs the stop saved relative to the `max_iters` budget (0 when
    /// the budget ran out or the run diverged).
    pub epochs_saved: u64,
    /// Sampled convergence curve (stride-spaced epochs).
    pub curve: Vec<EpochSample>,
}

/// Extraction (§7.1) threshold configuration and backoff sweep outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractionSummary {
    /// Score thresholds per role `[source, sanitizer, sink]`.
    pub thresholds: [f64; 3],
    /// Backoff decay per specificity level (0.8 in the paper).
    pub decay: f64,
    /// Selections per backoff level `i` (effective score `decay^i`·score):
    /// index 0 counts most-specific hits.
    pub backoff_hits: Vec<u64>,
    /// Learned entries per role `[sources, sanitizers, sinks]`.
    pub learned: [u64; 3],
}

impl Default for ExtractionSummary {
    fn default() -> Self {
        ExtractionSummary {
            thresholds: [0.0; 3],
            decay: 0.8,
            backoff_hits: Vec::new(),
            learned: [0; 3],
        }
    }
}

/// Artifact-cache usage of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheSummary {
    /// Whether a cache directory was attached to the run.
    pub enabled: bool,
    /// Per-file artifacts served from disk.
    pub hits: u64,
    /// Per-file lookups that found no entry.
    pub misses: u64,
    /// Entries written (artifacts and checkpoints).
    pub stores: u64,
    /// Entries rejected as corrupt.
    pub corrupt: u64,
    /// Entries rejected as version-stale.
    pub stale: u64,
    /// Entries evicted (quarantined or cleared).
    pub evicted: u64,
    /// Solver-checkpoint outcome: `"off"` (no cache), `"cold"` (miss),
    /// `"scores"` (system fingerprint hit, solve skipped), or `"full"`
    /// (input fingerprint hit, generation through extraction skipped).
    pub checkpoint: String,
}

impl Default for CacheSummary {
    fn default() -> Self {
        CacheSummary {
            enabled: false,
            hits: 0,
            misses: 0,
            stores: 0,
            corrupt: 0,
            stale: 0,
            evicted: 0,
            checkpoint: "off".to_string(),
        }
    }
}

/// Taint-analysis outcome with the learned specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TaintSummary {
    /// Unsanitized source→sink flows reported.
    pub violations: u64,
}

/// Process-level memory accounting of one run (see
/// [`crate::memory::MemoryGauge`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemorySummary {
    /// Whether the counting-allocator readings were taken (always true
    /// for manifests emitted by this build; false only in synthetic or
    /// legacy records).
    pub tracked: bool,
    /// Live heap bytes when the manifest was assembled.
    pub current_bytes: u64,
    /// Allocator high-water mark since process start.
    pub peak_bytes: u64,
    /// Kernel peak RSS (`VmHWM`) in bytes; 0 where the platform does not
    /// expose it.
    pub peak_rss_bytes: u64,
}

/// One learned-score row of the opt-in `--score-dump` section — the raw
/// data behind Fig. 11 (score versus backoff level).
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreDumpEntry {
    /// Representation string the score attaches to.
    pub rep: String,
    /// Role label (`"source"`, `"sanitizer"`, `"sink"`).
    pub role: String,
    /// Effective (decay-discounted) score that won the backoff sweep.
    pub score: f64,
    /// Backoff level of the winning representation (0 = most specific).
    pub backoff_level: u64,
}

/// The complete machine-readable record of one pipeline run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunManifest {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Emitting tool (`"seldon"`).
    pub tool: String,
    /// The command that produced the run (e.g. `"learn"`).
    pub command: String,
    /// How the run was produced: `"batch"` for a one-shot pipeline run,
    /// `"served-incremental"` for a spec computed by the `seldon serve`
    /// daemon applying a corpus delta. Absent in pre-v7 manifests
    /// (parsed as `"batch"`).
    pub mode: String,
    /// Corpus and global-graph shape.
    pub corpus: CorpusShape,
    /// Per-file fault/budget outcomes.
    pub outcomes: OutcomeCounts,
    /// Stage spans in open order.
    pub stages: Vec<StageSpan>,
    /// Constraint-system shape.
    pub constraints: ConstraintSummary,
    /// Solver outcome and convergence curve.
    pub solver: SolverSummary,
    /// Extraction configuration and sweep.
    pub extraction: ExtractionSummary,
    /// Taint outcome.
    pub taint: TaintSummary,
    /// Artifact-cache usage.
    pub cache: CacheSummary,
    /// Per-frontend per-file parse-time buckets (one entry per frontend
    /// that parsed at least one file; empty when nothing was parsed).
    pub parse_histograms: Vec<ParseHistogram>,
    /// Process memory accounting.
    pub memory: MemorySummary,
    /// Named metrics (counters, gauges, distributions) assembled from
    /// the run's artifacts.
    pub metrics: MetricsRegistry,
    /// Per-representation learned scores with backoff level (Fig. 11);
    /// empty unless the run asked for `--score-dump`.
    pub score_dump: Vec<ScoreDumpEntry>,
}

impl RunManifest {
    /// An empty manifest with the current schema version and tool name.
    pub fn new(command: impl Into<String>) -> RunManifest {
        RunManifest {
            schema_version: SCHEMA_VERSION,
            tool: "seldon".to_string(),
            command: command.into(),
            mode: "batch".to_string(),
            ..RunManifest::default()
        }
    }

    /// The stage span named `name`, if present.
    pub fn stage(&self, name: &str) -> Option<&StageSpan> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Whether all eight pipeline stages are present.
    pub fn has_all_stages(&self) -> bool {
        stage::ALL.iter().all(|name| self.stage(name).is_some())
    }

    /// Zeroes all wall-clock and machine-state fields (span
    /// start/duration, memory bytes, volatile metrics) so manifests of
    /// repeated runs compare equal; counts and curves are untouched.
    /// Parse-time histograms — and volatile histograms in the metrics
    /// registry — are collapsed to their totals in the first bucket:
    /// which bucket a file lands in is wall-clock-dependent, but how many
    /// observations there were is not.
    pub fn redact_timings(&mut self) {
        for s in &mut self.stages {
            s.start_us = 0;
            s.dur_us = 0;
            s.mem_now_bytes = 0;
            s.mem_peak_bytes = 0;
        }
        for h in &mut self.parse_histograms {
            h.hist.collapse();
        }
        self.memory.current_bytes = 0;
        self.memory.peak_bytes = 0;
        self.memory.peak_rss_bytes = 0;
        self.metrics.redact();
    }

    /// Serializes to pretty JSON (the `--telemetry` file format).
    pub fn to_json(&self) -> String {
        self.to_value().pretty()
    }

    fn to_value(&self) -> Json {
        Json::Obj(vec![
            ("schema_version".into(), Json::num(self.schema_version as f64)),
            ("tool".into(), Json::str(&self.tool)),
            ("command".into(), Json::str(&self.command)),
            ("mode".into(), Json::str(&self.mode)),
            (
                "corpus".into(),
                Json::Obj(vec![
                    ("files".into(), Json::num(self.corpus.files as f64)),
                    ("projects".into(), Json::num(self.corpus.projects as f64)),
                    ("events".into(), Json::num(self.corpus.events as f64)),
                    ("edges".into(), Json::num(self.corpus.edges as f64)),
                    ("symbols".into(), Json::num(self.corpus.symbols as f64)),
                ]),
            ),
            (
                "outcomes".into(),
                Json::Obj(vec![
                    ("ok".into(), Json::num(self.outcomes.ok as f64)),
                    ("recovered".into(), Json::num(self.outcomes.recovered as f64)),
                    ("skipped".into(), Json::num(self.outcomes.skipped as f64)),
                    ("over_budget".into(), Json::num(self.outcomes.over_budget as f64)),
                    ("panicked".into(), Json::num(self.outcomes.panicked as f64)),
                ]),
            ),
            (
                "stages".into(),
                Json::Arr(
                    self.stages
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("name".into(), Json::str(&s.name)),
                                (
                                    "parent".into(),
                                    s.parent.map_or(Json::Null, |p| Json::num(f64::from(p))),
                                ),
                                ("depth".into(), Json::num(f64::from(s.depth))),
                                ("start_us".into(), Json::num(s.start_us as f64)),
                                ("dur_us".into(), Json::num(s.dur_us as f64)),
                                ("mem_now_bytes".into(), Json::num(s.mem_now_bytes as f64)),
                                ("mem_peak_bytes".into(), Json::num(s.mem_peak_bytes as f64)),
                                (
                                    "counters".into(),
                                    Json::Obj(
                                        s.counters
                                            .iter()
                                            .map(|(k, v)| (k.clone(), Json::num(*v)))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "constraints".into(),
                Json::Obj(vec![
                    ("total".into(), Json::num(self.constraints.total as f64)),
                    ("vars".into(), Json::num(self.constraints.vars as f64)),
                    ("pinned".into(), Json::num(self.constraints.pinned as f64)),
                    (
                        "by_template".into(),
                        Json::Arr(
                            self.constraints
                                .by_template
                                .iter()
                                .map(|&n| Json::num(n as f64))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "solver".into(),
                Json::Obj(vec![
                    ("iterations".into(), Json::num(self.solver.iterations as f64)),
                    ("restarts".into(), Json::num(self.solver.restarts as f64)),
                    ("diverged".into(), Json::Bool(self.solver.diverged)),
                    ("final_lr".into(), Json::num(self.solver.final_lr)),
                    ("objective".into(), Json::num(self.solver.objective)),
                    ("violation".into(), Json::num(self.solver.violation)),
                    ("threads".into(), Json::num(self.solver.threads as f64)),
                    ("stop_reason".into(), Json::str(&self.solver.stop_reason)),
                    ("epochs_saved".into(), Json::num(self.solver.epochs_saved as f64)),
                    (
                        "curve".into(),
                        Json::Arr(
                            self.solver
                                .curve
                                .iter()
                                .map(|e| {
                                    Json::Obj(vec![
                                        ("epoch".into(), Json::num(e.epoch as f64)),
                                        ("objective".into(), Json::num(e.objective)),
                                        ("hinge_loss".into(), Json::num(e.hinge_loss)),
                                        ("violated".into(), Json::num(e.violated as f64)),
                                        ("grad_norm".into(), Json::num(e.grad_norm)),
                                        ("lr".into(), Json::num(e.lr)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "extraction".into(),
                Json::Obj(vec![
                    (
                        "thresholds".into(),
                        Json::Arr(
                            self.extraction.thresholds.iter().map(|&t| Json::num(t)).collect(),
                        ),
                    ),
                    ("decay".into(), Json::num(self.extraction.decay)),
                    (
                        "backoff_hits".into(),
                        Json::Arr(
                            self.extraction
                                .backoff_hits
                                .iter()
                                .map(|&n| Json::num(n as f64))
                                .collect(),
                        ),
                    ),
                    (
                        "learned".into(),
                        Json::Arr(
                            self.extraction.learned.iter().map(|&n| Json::num(n as f64)).collect(),
                        ),
                    ),
                ]),
            ),
            (
                "taint".into(),
                Json::Obj(vec![(
                    "violations".into(),
                    Json::num(self.taint.violations as f64),
                )]),
            ),
            (
                "cache".into(),
                Json::Obj(vec![
                    ("enabled".into(), Json::Bool(self.cache.enabled)),
                    ("hits".into(), Json::num(self.cache.hits as f64)),
                    ("misses".into(), Json::num(self.cache.misses as f64)),
                    ("stores".into(), Json::num(self.cache.stores as f64)),
                    ("corrupt".into(), Json::num(self.cache.corrupt as f64)),
                    ("stale".into(), Json::num(self.cache.stale as f64)),
                    ("evicted".into(), Json::num(self.cache.evicted as f64)),
                    ("checkpoint".into(), Json::str(&self.cache.checkpoint)),
                ]),
            ),
            (
                "parse_histograms".into(),
                Json::Arr(
                    self.parse_histograms
                        .iter()
                        .map(|h| {
                            Json::Obj(vec![
                                ("frontend".into(), Json::str(&h.frontend)),
                                (
                                    "counts".into(),
                                    Json::Arr(
                                        h.hist
                                            .counts
                                            .iter()
                                            .map(|&n| Json::num(n as f64))
                                            .collect(),
                                    ),
                                ),
                                ("sum".into(), Json::num(h.hist.sum)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "memory".into(),
                Json::Obj(vec![
                    ("tracked".into(), Json::Bool(self.memory.tracked)),
                    ("current_bytes".into(), Json::num(self.memory.current_bytes as f64)),
                    ("peak_bytes".into(), Json::num(self.memory.peak_bytes as f64)),
                    ("peak_rss_bytes".into(), Json::num(self.memory.peak_rss_bytes as f64)),
                ]),
            ),
            ("metrics".into(), self.metrics.to_json()),
            (
                "score_dump".into(),
                Json::Arr(
                    self.score_dump
                        .iter()
                        .map(|e| {
                            Json::Obj(vec![
                                ("rep".into(), Json::str(&e.rep)),
                                ("role".into(), Json::str(&e.role)),
                                ("score".into(), Json::num(e.score)),
                                ("backoff_level".into(), Json::num(e.backoff_level as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses and schema-validates a manifest from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns [`ManifestError::Json`] on malformed JSON and
    /// [`ManifestError::Schema`] when a required field is missing or has
    /// the wrong type.
    pub fn from_json(text: &str) -> Result<RunManifest, ManifestError> {
        let v = json::parse(text)?;
        let corpus = req(&v, "corpus")?;
        let outcomes = req(&v, "outcomes")?;
        let constraints = req(&v, "constraints")?;
        let solver = req(&v, "solver")?;
        let extraction = req(&v, "extraction")?;
        let taint = req(&v, "taint")?;
        let cache = req(&v, "cache")?;
        let memory = req(&v, "memory")?;
        Ok(RunManifest {
            schema_version: req_u64(&v, "schema_version")?,
            tool: req_str(&v, "tool")?,
            command: req_str(&v, "command")?,
            // Lenient: absent from v6 and earlier manifests, which were
            // all one-shot batch runs by construction.
            mode: v.get("mode").and_then(Json::as_str).unwrap_or("batch").to_string(),
            corpus: CorpusShape {
                files: req_u64(corpus, "files")?,
                projects: req_u64(corpus, "projects")?,
                events: req_u64(corpus, "events")?,
                edges: req_u64(corpus, "edges")?,
                symbols: req_u64(corpus, "symbols")?,
            },
            outcomes: OutcomeCounts {
                ok: req_u64(outcomes, "ok")?,
                recovered: req_u64(outcomes, "recovered")?,
                skipped: req_u64(outcomes, "skipped")?,
                over_budget: req_u64(outcomes, "over_budget")?,
                panicked: req_u64(outcomes, "panicked")?,
            },
            stages: req_arr(&v, "stages")?
                .iter()
                .map(parse_stage)
                .collect::<Result<Vec<_>, _>>()?,
            constraints: ConstraintSummary {
                total: req_u64(constraints, "total")?,
                vars: req_u64(constraints, "vars")?,
                pinned: req_u64(constraints, "pinned")?,
                by_template: req_u64_triple(constraints, "by_template")?,
            },
            solver: SolverSummary {
                iterations: req_u64(solver, "iterations")?,
                restarts: req_u64(solver, "restarts")?,
                diverged: req(solver, "diverged")?
                    .as_bool()
                    .ok_or_else(|| schema_err("solver.diverged", "bool"))?,
                final_lr: req_f64(solver, "final_lr")?,
                objective: req_f64(solver, "objective")?,
                violation: req_f64(solver, "violation")?,
                threads: req_u64(solver, "threads")?,
                // Lenient: absent in pre-v6 manifests.
                stop_reason: solver
                    .get("stop_reason")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
                epochs_saved: solver
                    .get("epochs_saved")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                curve: req_arr(solver, "curve")?
                    .iter()
                    .map(parse_epoch)
                    .collect::<Result<Vec<_>, _>>()?,
            },
            extraction: ExtractionSummary {
                thresholds: req_f64_triple(extraction, "thresholds")?,
                decay: req_f64(extraction, "decay")?,
                backoff_hits: req_arr(extraction, "backoff_hits")?
                    .iter()
                    .map(|n| n.as_u64().ok_or_else(|| schema_err("backoff_hits[]", "u64")))
                    .collect::<Result<Vec<_>, _>>()?,
                learned: req_u64_triple(extraction, "learned")?,
            },
            taint: TaintSummary { violations: req_u64(taint, "violations")? },
            parse_histograms: req_arr(&v, "parse_histograms")?
                .iter()
                .map(parse_histogram)
                .collect::<Result<Vec<_>, _>>()?,
            cache: CacheSummary {
                enabled: req(cache, "enabled")?
                    .as_bool()
                    .ok_or_else(|| schema_err("cache.enabled", "bool"))?,
                hits: req_u64(cache, "hits")?,
                misses: req_u64(cache, "misses")?,
                stores: req_u64(cache, "stores")?,
                corrupt: req_u64(cache, "corrupt")?,
                stale: req_u64(cache, "stale")?,
                evicted: req_u64(cache, "evicted")?,
                checkpoint: req_str(cache, "checkpoint")?,
            },
            memory: MemorySummary {
                tracked: req(memory, "tracked")?
                    .as_bool()
                    .ok_or_else(|| schema_err("memory.tracked", "bool"))?,
                current_bytes: req_u64(memory, "current_bytes")?,
                peak_bytes: req_u64(memory, "peak_bytes")?,
                peak_rss_bytes: req_u64(memory, "peak_rss_bytes")?,
            },
            metrics: MetricsRegistry::from_json(req(&v, "metrics")?)?,
            score_dump: req_arr(&v, "score_dump")?
                .iter()
                .map(parse_score_entry)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }

    /// Serializes the stage spans in Chrome trace-event format (an array
    /// of complete `"ph": "X"` events), loadable in `chrome://tracing` or
    /// <https://ui.perfetto.dev>.
    pub fn chrome_trace(&self) -> String {
        Json::Arr(
            self.stages
                .iter()
                .map(|s| {
                    Json::Obj(vec![
                        ("name".into(), Json::str(&s.name)),
                        ("cat".into(), Json::str("stage")),
                        ("ph".into(), Json::str("X")),
                        ("ts".into(), Json::num(s.start_us as f64)),
                        ("dur".into(), Json::num(s.dur_us as f64)),
                        ("pid".into(), Json::num(1.0)),
                        ("tid".into(), Json::num(1.0)),
                        (
                            "args".into(),
                            Json::Obj(
                                s.counters
                                    .iter()
                                    .map(|(k, v)| (k.clone(), Json::num(*v)))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        )
        .pretty()
    }

    /// Renders the manifest's quantitative content in Prometheus text
    /// exposition format (the `seldon metrics-dump` output): labelled
    /// per-stage duration/memory gauges, cache and memory scalars,
    /// per-frontend parse-time histograms, and every metric in the
    /// registry, all under the `seldon_` prefix.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str("# HELP seldon_stage_duration_us Wall-clock duration per pipeline stage.\n");
        out.push_str("# TYPE seldon_stage_duration_us gauge\n");
        for s in self.stages.iter().filter(|s| s.depth == 0) {
            out.push_str(&format!(
                "seldon_stage_duration_us{{stage=\"{}\"}} {}\n",
                s.name, s.dur_us
            ));
        }
        out.push_str(
            "# HELP seldon_stage_mem_peak_bytes Allocator high-water mark at stage close.\n",
        );
        out.push_str("# TYPE seldon_stage_mem_peak_bytes gauge\n");
        for s in self.stages.iter().filter(|s| s.depth == 0) {
            out.push_str(&format!(
                "seldon_stage_mem_peak_bytes{{stage=\"{}\"}} {}\n",
                s.name, s.mem_peak_bytes
            ));
        }
        let mut reg = MetricsRegistry::new();
        reg.set_gauge(
            "mem_current_bytes",
            "Live heap bytes at manifest assembly.",
            true,
            self.memory.current_bytes as f64,
        );
        reg.set_gauge(
            "mem_peak_bytes",
            "Allocator high-water mark since process start.",
            true,
            self.memory.peak_bytes as f64,
        );
        reg.set_gauge(
            "mem_peak_rss_bytes",
            "Kernel peak RSS (VmHWM); 0 when unavailable.",
            true,
            self.memory.peak_rss_bytes as f64,
        );
        reg.inc_counter("cache_hits", "Per-file artifacts served from cache.", false, self.cache.hits as f64);
        reg.inc_counter("cache_misses", "Per-file cache lookups that missed.", false, self.cache.misses as f64);
        reg.inc_counter("cache_stores", "Cache entries written.", false, self.cache.stores as f64);
        reg.inc_counter(
            "cache_faults",
            "Cache entries rejected (corrupt, stale, or evicted).",
            false,
            (self.cache.corrupt + self.cache.stale + self.cache.evicted) as f64,
        );
        out.push_str(&reg.to_prometheus("seldon_"));
        for h in &self.parse_histograms {
            let mut freg = MetricsRegistry::new();
            freg.put_histogram(
                &format!("parse_time_us_{}", h.frontend),
                "Per-file parse time by frontend.",
                true,
                h.hist.clone(),
            );
            out.push_str(&freg.to_prometheus("seldon_"));
        }
        out.push_str(&self.metrics.to_prometheus("seldon_"));
        out
    }
}

fn parse_stage(v: &Json) -> Result<StageSpan, ManifestError> {
    let counters = match req(v, "counters")? {
        Json::Obj(pairs) => pairs
            .iter()
            .map(|(k, n)| {
                n.as_f64()
                    .map(|f| (k.clone(), f))
                    .ok_or_else(|| schema_err("stage counter", "number"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err(schema_err("stages[].counters", "object")),
    };
    let parent = match req(v, "parent")? {
        Json::Null => None,
        n => Some(
            n.as_u64().ok_or_else(|| schema_err("stages[].parent", "u32 or null"))? as u32,
        ),
    };
    Ok(StageSpan {
        name: req_str(v, "name")?,
        parent,
        depth: req_u64(v, "depth")? as u32,
        start_us: req_u64(v, "start_us")?,
        dur_us: req_u64(v, "dur_us")?,
        mem_now_bytes: req_u64(v, "mem_now_bytes")?,
        mem_peak_bytes: req_u64(v, "mem_peak_bytes")?,
        counters,
    })
}

fn parse_histogram(v: &Json) -> Result<ParseHistogram, ManifestError> {
    let mut h = ParseHistogram::new(req_str(v, "frontend")?);
    let arr = req_arr(v, "counts")?;
    if arr.len() != h.hist.counts.len() {
        return Err(schema_err("parse_histograms[].counts", "9-element array"));
    }
    for (slot, n) in h.hist.counts.iter_mut().zip(arr) {
        *slot = n.as_u64().ok_or_else(|| schema_err("parse_histograms[].counts", "u64 array"))?;
    }
    h.hist.sum = req_f64(v, "sum")?;
    Ok(h)
}

fn parse_score_entry(v: &Json) -> Result<ScoreDumpEntry, ManifestError> {
    Ok(ScoreDumpEntry {
        rep: req_str(v, "rep")?,
        role: req_str(v, "role")?,
        score: req_f64(v, "score")?,
        backoff_level: req_u64(v, "backoff_level")?,
    })
}

fn parse_epoch(v: &Json) -> Result<EpochSample, ManifestError> {
    Ok(EpochSample {
        epoch: req_u64(v, "epoch")?,
        objective: req_f64(v, "objective")?,
        hinge_loss: req_f64(v, "hinge_loss")?,
        violated: req_u64(v, "violated")?,
        grad_norm: req_f64(v, "grad_norm")?,
        lr: req_f64(v, "lr")?,
    })
}

fn schema_err(field: &str, expected: &str) -> ManifestError {
    ManifestError::Schema(format!("field `{field}` missing or not a {expected}"))
}

fn req<'a>(v: &'a Json, key: &str) -> Result<&'a Json, ManifestError> {
    v.get(key).ok_or_else(|| ManifestError::Schema(format!("missing field `{key}`")))
}

fn req_u64(v: &Json, key: &str) -> Result<u64, ManifestError> {
    req(v, key)?.as_u64().ok_or_else(|| schema_err(key, "u64"))
}

fn req_f64(v: &Json, key: &str) -> Result<f64, ManifestError> {
    req(v, key)?.as_f64().ok_or_else(|| schema_err(key, "number"))
}

fn req_str(v: &Json, key: &str) -> Result<String, ManifestError> {
    Ok(req(v, key)?.as_str().ok_or_else(|| schema_err(key, "string"))?.to_string())
}

fn req_arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], ManifestError> {
    req(v, key)?.as_arr().ok_or_else(|| schema_err(key, "array"))
}

fn req_u64_triple(v: &Json, key: &str) -> Result<[u64; 3], ManifestError> {
    let arr = req_arr(v, key)?;
    if arr.len() != 3 {
        return Err(schema_err(key, "3-element array"));
    }
    let mut out = [0u64; 3];
    for (slot, n) in out.iter_mut().zip(arr) {
        *slot = n.as_u64().ok_or_else(|| schema_err(key, "u64 array"))?;
    }
    Ok(out)
}

fn req_f64_triple(v: &Json, key: &str) -> Result<[f64; 3], ManifestError> {
    let arr = req_arr(v, key)?;
    if arr.len() != 3 {
        return Err(schema_err(key, "3-element array"));
    }
    let mut out = [0f64; 3];
    for (slot, n) in out.iter_mut().zip(arr) {
        *slot = n.as_f64().ok_or_else(|| schema_err(key, "number array"))?;
    }
    Ok(out)
}

/// Failure to parse or validate a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestError {
    /// The input was not well-formed JSON.
    Json(JsonError),
    /// The JSON did not match the manifest schema.
    Schema(String),
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Json(e) => e.fmt(f),
            ManifestError::Schema(msg) => write!(f, "manifest schema error: {msg}"),
        }
    }
}

impl std::error::Error for ManifestError {}

impl From<JsonError> for ManifestError {
    fn from(e: JsonError) -> Self {
        ManifestError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest() -> RunManifest {
        let mut m = RunManifest::new("learn");
        m.corpus = CorpusShape { files: 3, projects: 1, events: 40, edges: 25, symbols: 90 };
        m.outcomes = OutcomeCounts { ok: 2, recovered: 1, ..Default::default() };
        m.stages = vec![
            StageSpan {
                name: stage::PARSE.into(),
                parent: None,
                depth: 0,
                start_us: 0,
                dur_us: 120,
                mem_now_bytes: 4096,
                mem_peak_bytes: 8192,
                counters: vec![("files".into(), 3.0)],
            },
            StageSpan {
                name: stage::SOLVE.into(),
                parent: None,
                depth: 0,
                start_us: 130,
                dur_us: 999,
                mem_now_bytes: 2048,
                mem_peak_bytes: 16384,
                counters: vec![("iterations".into(), 80.0)],
            },
        ];
        m.constraints =
            ConstraintSummary { total: 26, vars: 12, pinned: 4, by_template: [9, 8, 9] };
        m.solver = SolverSummary {
            iterations: 80,
            restarts: 1,
            diverged: false,
            final_lr: 0.0125,
            objective: 1.25,
            violation: 0.5,
            threads: 4,
            stop_reason: "plateau".into(),
            epochs_saved: 95,
            curve: vec![
                EpochSample {
                    epoch: 0,
                    objective: 3.0,
                    hinge_loss: 2.9,
                    violated: 20,
                    grad_norm: 4.2,
                    lr: 0.05,
                },
                EpochSample {
                    epoch: 10,
                    objective: 1.25,
                    hinge_loss: 0.5,
                    violated: 3,
                    grad_norm: 0.7,
                    lr: 0.05,
                },
            ],
        };
        m.extraction = ExtractionSummary {
            thresholds: [0.1, 0.4, 0.1],
            decay: 0.8,
            backoff_hits: vec![5, 2, 0],
            learned: [3, 1, 2],
        };
        m.taint = TaintSummary { violations: 7 };
        let mut py_hist = ParseHistogram::with_counts("python", [1, 0, 2, 0, 0, 0, 0, 0, 1]);
        py_hist.hist.sum = 11_250.0;
        m.parse_histograms =
            vec![py_hist, ParseHistogram::with_counts("js", [0, 3, 0, 0, 0, 0, 0, 0, 0])];
        m.memory = MemorySummary {
            tracked: true,
            current_bytes: 1_000_000,
            peak_bytes: 5_000_000,
            peak_rss_bytes: 9_000_000,
        };
        m.metrics.inc_counter("files_analyzed", "Files analyzed.", false, 3.0);
        m.metrics.set_gauge("solver_epoch_us", "Mean epoch time.", true, 12.5);
        m.metrics.observe("rep_frequency", "Occurrences per representation.", false, &[1.0, 10.0], 4.0);
        m.score_dump = vec![
            ScoreDumpEntry {
                rep: "os.system(0)".into(),
                role: "sink".into(),
                score: 0.93,
                backoff_level: 0,
            },
            ScoreDumpEntry {
                rep: "flask.request.*".into(),
                role: "source".into(),
                score: 0.61,
                backoff_level: 2,
            },
        ];
        m.cache = CacheSummary {
            enabled: true,
            hits: 5,
            misses: 2,
            stores: 3,
            corrupt: 1,
            stale: 0,
            evicted: 1,
            checkpoint: "full".into(),
        };
        m
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let m = sample_manifest();
        let back = RunManifest::from_json(&m.to_json()).expect("round trip");
        assert_eq!(back, m);
    }

    #[test]
    fn v6_manifest_without_mode_parses_as_batch() {
        let m = sample_manifest();
        let legacy = m
            .to_json()
            .replace("\"mode\": \"batch\",\n", "")
            .replace("\"schema_version\": 7", "\"schema_version\": 6");
        assert_ne!(legacy, m.to_json(), "mode field was present to strip");
        let back = RunManifest::from_json(&legacy).expect("lenient v6 parse");
        assert_eq!(back.mode, "batch");
        assert_eq!(back.schema_version, 6);
    }

    #[test]
    fn schema_validation_rejects_missing_and_mistyped_fields() {
        let m = sample_manifest();
        let text = m.to_json();
        let no_solver = text.replace("\"solver\"", "\"solver_x\"");
        assert!(matches!(
            RunManifest::from_json(&no_solver),
            Err(ManifestError::Schema(_))
        ));
        let bad_bool = text.replace("\"diverged\": false", "\"diverged\": 0");
        assert!(matches!(RunManifest::from_json(&bad_bool), Err(ManifestError::Schema(_))));
        let no_cache = text.replace("\"cache\"", "\"cache_x\"");
        assert!(matches!(RunManifest::from_json(&no_cache), Err(ManifestError::Schema(_))));
        assert!(matches!(RunManifest::from_json("{oops"), Err(ManifestError::Json(_))));
    }

    #[test]
    fn redaction_zeroes_only_timings() {
        let mut m = sample_manifest();
        m.redact_timings();
        assert!(m.stages.iter().all(|s| s.start_us == 0 && s.dur_us == 0));
        assert!(m.stages.iter().all(|s| s.mem_now_bytes == 0 && s.mem_peak_bytes == 0));
        assert_eq!(m.solver.curve.len(), 2, "curve untouched");
        assert_eq!(m.stages[0].counters, vec![("files".to_string(), 3.0)]);
        // Histogram spreads are wall-clock-dependent; the totals are not.
        assert_eq!(m.parse_histograms[0].counts(), &[4, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(m.parse_histograms[0].hist.sum, 0.0);
        assert_eq!(m.parse_histograms[1].total(), 3);
        // Memory readings are machine state.
        assert!(m.memory.tracked, "tracked flag survives redaction");
        assert_eq!(m.memory.peak_bytes, 0);
        // Volatile metrics are zeroed, deterministic ones are not.
        use crate::metrics::MetricValue;
        assert_eq!(
            m.metrics.get("solver_epoch_us").unwrap().value,
            MetricValue::Gauge(0.0)
        );
        assert_eq!(
            m.metrics.get("files_analyzed").unwrap().value,
            MetricValue::Counter(3.0)
        );
        // The score dump is solver output, deterministic by design.
        assert_eq!(m.score_dump.len(), 2);
        assert_eq!(m.score_dump[0].score, 0.93);
    }

    #[test]
    fn stage_lookup_and_completeness() {
        let m = sample_manifest();
        assert!(m.stage(stage::PARSE).is_some());
        assert!(m.stage(stage::TAINT).is_none());
        assert!(!m.has_all_stages());
    }

    #[test]
    fn parse_histogram_buckets_by_bound() {
        let mut h = ParseHistogram::new("python");
        h.record(0); // first bucket (≤ 50µs)
        h.record(50); // bounds are inclusive
        h.record(51); // next bucket
        h.record(10_000); // last bounded bucket
        h.record(10_001); // overflow
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[PARSE_HIST_BOUNDS.len() - 1], 1);
        assert_eq!(h.counts()[PARSE_HIST_BOUNDS.len()], 1);
        assert_eq!(h.total(), 5);
        assert_eq!(h.hist.sum, 20_102.0, "sum accumulates for mean reconstruction");
    }

    #[test]
    fn histogram_schema_rejects_wrong_arity() {
        let bad = json::parse(r#"{"frontend": "python", "counts": [1, 2], "sum": 0}"#).unwrap();
        assert!(matches!(parse_histogram(&bad), Err(ManifestError::Schema(_))));
        let ok = json::parse(
            r#"{"frontend": "js", "counts": [0, 1, 2, 3, 4, 5, 6, 7, 8], "sum": 99.5}"#,
        )
        .unwrap();
        assert_eq!(parse_histogram(&ok).unwrap().total(), 36);
    }

    #[test]
    fn prometheus_exposition_covers_stages_memory_and_registry() {
        let text = sample_manifest().to_prometheus();
        assert!(text.contains("seldon_stage_duration_us{stage=\"parse\"} 120\n"));
        assert!(text.contains("seldon_stage_mem_peak_bytes{stage=\"solve\"} 16384\n"));
        assert!(text.contains("seldon_mem_peak_rss_bytes 9000000\n"));
        assert!(text.contains("seldon_cache_hits 5\n"));
        assert!(text.contains("seldon_parse_time_us_python_bucket{le=\"50\"} 1\n"));
        assert!(text.contains("seldon_parse_time_us_python_count 4\n"));
        assert!(text.contains("seldon_rep_frequency_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("seldon_files_analyzed 3\n"));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_complete_events() {
        let m = sample_manifest();
        let trace = crate::json::parse(&m.chrome_trace()).expect("valid JSON");
        let events = trace.as_arr().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(events[1].get("dur").and_then(Json::as_u64), Some(999));
        assert_eq!(
            events[1].get("args").and_then(|a| a.get("iterations")).and_then(Json::as_u64),
            Some(80)
        );
    }
}
