//! The span/counter recorder behind a [`Telemetry`] handle.
//!
//! Design constraints (mirroring the rest of the workspace): no external
//! services, no background threads, and a **zero-cost disabled path** — a
//! disabled handle holds no recorder, [`Telemetry::span`] returns an inert
//! guard without so much as reading the clock, and counters are dropped
//! before any allocation happens.

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Stderr log verbosity of a [`Telemetry`] handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Level {
    /// No logging (the default).
    #[default]
    Off,
    /// One line per closed stage span.
    Info,
    /// Stage lines plus every recorded counter.
    Debug,
}

impl std::str::FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(Level::Off),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            other => Err(format!("unknown log level `{other}` (expected off|info|debug)")),
        }
    }
}

/// One recorded span: a named phase with wall-clock duration, tree
/// position, and attached counters.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Stage name (see [`crate::stage`]).
    pub name: &'static str,
    /// Index of the enclosing span in the record list, if nested.
    pub parent: Option<u32>,
    /// Nesting depth (root spans are 0).
    pub depth: u32,
    /// Microseconds since the recorder was created.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Live heap bytes when the span closed (from the counting
    /// allocator; 0 until close).
    pub mem_now_bytes: u64,
    /// Allocator high-water mark when the span closed. The mark is
    /// monotone across the process, so this reads as "peak by end of
    /// stage", not a span-local maximum.
    pub mem_peak_bytes: u64,
    /// Counters recorded on this span, in record order.
    pub counters: Vec<(&'static str, f64)>,
}

#[derive(Debug, Default)]
struct Recorder {
    spans: Vec<SpanRecord>,
    /// Indices of currently open spans, innermost last.
    stack: Vec<u32>,
}

/// A cloneable telemetry handle threaded through the pipeline.
///
/// A handle is **disabled** (the default) or **active**. Disabled handles
/// are no-ops everywhere: spans don't read the clock, counters don't
/// allocate. Active handles record spans into a shared in-memory recorder
/// and/or log them to stderr depending on [`Level`].
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    rec: Option<Arc<(Instant, Mutex<Recorder>)>>,
    log: Level,
}

impl Telemetry {
    /// The disabled (no-op) handle.
    pub fn disabled() -> Telemetry {
        Telemetry::default()
    }

    /// A recording handle with logging off.
    pub fn recording() -> Telemetry {
        Telemetry {
            rec: Some(Arc::new((Instant::now(), Mutex::new(Recorder::default())))),
            log: Level::Off,
        }
    }

    /// Sets the stderr log level, returning the modified handle.
    #[must_use]
    pub fn with_log_level(mut self, level: Level) -> Telemetry {
        self.log = level;
        self
    }

    /// Whether spans are being recorded in memory.
    pub fn is_recording(&self) -> bool {
        self.rec.is_some()
    }

    /// Whether the handle does anything at all (recording or logging).
    pub fn is_active(&self) -> bool {
        self.rec.is_some() || self.log != Level::Off
    }

    fn lock(&self) -> Option<(Instant, MutexGuard<'_, Recorder>)> {
        self.rec.as_ref().map(|rec| {
            (rec.0, rec.1.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
        })
    }

    /// Opens a timed span; it closes (and records its duration) when the
    /// returned guard drops. On a disabled handle this is free.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        if !self.is_active() {
            return SpanGuard { tele: None, name, index: None, start: None };
        }
        let start = Instant::now();
        let index = self.lock().map(|(epoch, mut rec)| {
            let index = rec.spans.len() as u32;
            let parent = rec.stack.last().copied();
            let depth = rec.stack.len() as u32;
            rec.spans.push(SpanRecord {
                name,
                parent,
                depth,
                start_us: start.duration_since(epoch).as_micros() as u64,
                dur_us: 0,
                mem_now_bytes: 0,
                mem_peak_bytes: 0,
                counters: Vec::new(),
            });
            rec.stack.push(index);
            index
        });
        SpanGuard { tele: Some(self.clone()), name, index, start: Some(start) }
    }

    /// Records an already-measured phase as a closed span with the given
    /// duration and counters. Used for phases whose time is accumulated
    /// across worker threads (per-file parse/build), where a live guard
    /// would measure the driver's wall-clock instead of the work done.
    ///
    /// Returns the record index of the new span (for attaching children
    /// via [`Telemetry::aggregate_child`]); `None` on a non-recording
    /// handle.
    pub fn aggregate_span(
        &self,
        name: &'static str,
        dur: Duration,
        counters: &[(&'static str, f64)],
    ) -> Option<u32> {
        if !self.is_active() {
            return None;
        }
        let index = self.lock().map(|(epoch, mut rec)| {
            let index = rec.spans.len() as u32;
            let parent = rec.stack.last().copied();
            let depth = rec.stack.len() as u32;
            let now_us = epoch.elapsed().as_micros() as u64;
            let dur_us = dur.as_micros() as u64;
            let mem = crate::memory::MemoryGauge::snapshot();
            rec.spans.push(SpanRecord {
                name,
                parent,
                depth,
                start_us: now_us.saturating_sub(dur_us),
                dur_us,
                mem_now_bytes: mem.current_bytes,
                mem_peak_bytes: mem.peak_bytes,
                counters: counters.to_vec(),
            });
            index
        });
        if self.log >= Level::Info {
            eprintln!("[seldon] {name}: {dur:?} (aggregate)");
        }
        if self.log >= Level::Debug {
            for (k, v) in counters {
                eprintln!("[seldon]   {name}.{k} = {v}");
            }
        }
        index
    }

    /// Records an already-measured closed span as a **child** of the span
    /// at `parent` (an index returned by [`Telemetry::aggregate_span`] or
    /// [`SpanGuard::index`]), regardless of what is currently on the open
    /// stack. This lets the driver attach per-project / per-shard
    /// breakdowns to stage spans that were themselves recorded as
    /// aggregates. With `parent == None` the call is a no-op beyond debug
    /// logging — there is nothing to attach to on a non-recording handle.
    pub fn aggregate_child(
        &self,
        parent: Option<u32>,
        name: &'static str,
        dur: Duration,
        counters: &[(&'static str, f64)],
    ) {
        if !self.is_active() {
            return;
        }
        if let (Some(parent), Some((epoch, mut rec))) = (parent, self.lock()) {
            let depth = rec
                .spans
                .get(parent as usize)
                .map_or(0, |span| span.depth + 1);
            let now_us = epoch.elapsed().as_micros() as u64;
            let dur_us = dur.as_micros() as u64;
            let mem = crate::memory::MemoryGauge::snapshot();
            rec.spans.push(SpanRecord {
                name,
                parent: Some(parent),
                depth,
                start_us: now_us.saturating_sub(dur_us),
                dur_us,
                mem_now_bytes: mem.current_bytes,
                mem_peak_bytes: mem.peak_bytes,
                counters: counters.to_vec(),
            });
        }
        if self.log >= Level::Debug {
            eprintln!("[seldon]   {name}: {dur:?} (aggregate child)");
            for (k, v) in counters {
                eprintln!("[seldon]     {name}.{k} = {v}");
            }
        }
    }

    /// Logs a line at [`Level::Info`]; the closure only runs when enabled.
    pub fn info(&self, message: impl FnOnce() -> String) {
        if self.log >= Level::Info {
            eprintln!("[seldon] {}", message());
        }
    }

    /// Logs a line at [`Level::Debug`]; the closure only runs when enabled.
    pub fn debug(&self, message: impl FnOnce() -> String) {
        if self.log >= Level::Debug {
            eprintln!("[seldon] {}", message());
        }
    }

    /// Takes the recorded spans, leaving the recorder empty. Returns an
    /// empty list on non-recording handles.
    ///
    /// # Panics
    ///
    /// Panics if called while spans are still open.
    pub fn take_spans(&self) -> Vec<SpanRecord> {
        match self.lock() {
            Some((_, mut rec)) => {
                assert!(
                    rec.stack.is_empty(),
                    "take_spans() with {} span(s) still open",
                    rec.stack.len()
                );
                std::mem::take(&mut rec.spans)
            }
            None => Vec::new(),
        }
    }
}

/// Guard of one open span; records the duration when dropped.
#[derive(Debug)]
pub struct SpanGuard {
    tele: Option<Telemetry>,
    name: &'static str,
    index: Option<u32>,
    start: Option<Instant>,
}

impl SpanGuard {
    /// The record index of this span, for attaching aggregate children;
    /// `None` on a non-recording handle.
    pub fn index(&self) -> Option<u32> {
        self.index
    }

    /// Attaches a counter to this span (no-op on a disabled handle).
    pub fn counter(&self, name: &'static str, value: f64) {
        let Some(tele) = &self.tele else { return };
        if let (Some(index), Some((_, mut rec))) = (self.index, tele.lock()) {
            rec.spans[index as usize].counters.push((name, value));
        }
        if let Some(tele) = &self.tele {
            tele.debug(|| format!("  {}.{name} = {value}", self.name));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(tele) = &self.tele else { return };
        let elapsed = self.start.map(|s| s.elapsed()).unwrap_or_default();
        if let (Some(index), Some((_, mut rec))) = (self.index, tele.lock()) {
            let mem = crate::memory::MemoryGauge::snapshot();
            rec.spans[index as usize].dur_us = elapsed.as_micros() as u64;
            rec.spans[index as usize].mem_now_bytes = mem.current_bytes;
            rec.spans[index as usize].mem_peak_bytes = mem.peak_bytes;
            // Close strictly innermost-first; a leaked guard dropped out of
            // order would corrupt nesting, so tolerate only the top.
            if rec.stack.last() == Some(&index) {
                rec.stack.pop();
            } else {
                rec.stack.retain(|&i| i != index);
            }
        }
        tele.info(|| format!("{}: {elapsed:?}", self.name));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let tele = Telemetry::disabled();
        assert!(!tele.is_active());
        let span = tele.span("parse");
        span.counter("files", 3.0);
        drop(span);
        tele.aggregate_span("propgraph", Duration::from_millis(1), &[("events", 9.0)]);
        assert!(tele.take_spans().is_empty());
    }

    #[test]
    fn spans_record_in_open_order_with_nesting() {
        let tele = Telemetry::recording();
        {
            let outer = tele.span("solve");
            outer.counter("iterations", 10.0);
            let inner = tele.span("extract");
            inner.counter("learned", 2.0);
            drop(inner);
            drop(outer);
        }
        tele.aggregate_span("taint", Duration::from_micros(123), &[]);
        let spans = tele.take_spans();
        assert_eq!(
            spans.iter().map(|s| s.name).collect::<Vec<_>>(),
            ["solve", "extract", "taint"]
        );
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[2].parent, None, "taint opened after solve closed");
        assert_eq!(spans[0].counters, vec![("iterations", 10.0)]);
        assert_eq!(spans[2].dur_us, 123);
        // The recorder drains on take.
        assert!(tele.take_spans().is_empty());
    }

    #[test]
    fn aggregate_children_attach_to_closed_aggregates() {
        let tele = Telemetry::recording();
        let parse = tele.aggregate_span("parse", Duration::from_micros(100), &[]);
        assert!(parse.is_some());
        tele.aggregate_child(parse, "parse.project", Duration::from_micros(40), &[("project", 0.0)]);
        tele.aggregate_child(parse, "parse.project", Duration::from_micros(60), &[("project", 1.0)]);
        let union = tele.span("union");
        tele.aggregate_child(union.index(), "union.shard", Duration::from_micros(7), &[]);
        drop(union);
        let spans = tele.take_spans();
        assert_eq!(
            spans.iter().map(|s| s.name).collect::<Vec<_>>(),
            ["parse", "parse.project", "parse.project", "union", "union.shard"]
        );
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[2].parent, Some(0));
        assert_eq!(spans[4].parent, Some(3), "child of a live guard's index");
        assert_eq!(spans[4].depth, 1);
        // Disabled handles stay free.
        let off = Telemetry::disabled();
        assert_eq!(off.aggregate_span("parse", Duration::ZERO, &[]), None);
        off.aggregate_child(None, "parse.project", Duration::ZERO, &[]);
        assert!(off.take_spans().is_empty());
    }

    #[test]
    fn clones_share_one_recorder() {
        let tele = Telemetry::recording();
        let clone = tele.clone();
        drop(clone.span("parse"));
        drop(tele.span("union"));
        let names: Vec<&str> = tele.take_spans().iter().map(|s| s.name).collect();
        assert_eq!(names, ["parse", "union"]);
    }

    #[test]
    fn level_parsing_and_order() {
        assert_eq!("info".parse::<Level>(), Ok(Level::Info));
        assert_eq!("debug".parse::<Level>(), Ok(Level::Debug));
        assert_eq!("off".parse::<Level>(), Ok(Level::Off));
        assert!("verbose".parse::<Level>().is_err());
        assert!(Level::Debug > Level::Info && Level::Info > Level::Off);
    }

    #[test]
    fn log_only_handle_is_active_but_not_recording() {
        let tele = Telemetry::disabled().with_log_level(Level::Info);
        assert!(tele.is_active());
        assert!(!tele.is_recording());
        drop(tele.span("parse"));
        assert!(tele.take_spans().is_empty());
    }
}
