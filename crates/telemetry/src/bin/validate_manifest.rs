//! Schema validator for `seldon --telemetry` run manifests, used by CI.
//!
//! ```text
//! validate_manifest <manifest.json> [--require-full]
//! ```
//!
//! Exit 0 when the file parses, schema-validates, and survives a lossless
//! serialize→parse round trip. `--require-full` additionally demands all
//! eight pipeline stage spans, a non-empty solver convergence curve with
//! strictly increasing epoch indices, per-template constraint counts that
//! sum to the constraint total, tracked memory accounting, and the
//! `rep_frequency` metric (plus `constraint_gap` whenever the system was
//! actually built, i.e. the run was not a full checkpoint replay).

use seldon_telemetry::{stage, RunManifest, SCHEMA_VERSION};
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("validate_manifest: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let require_full = args.iter().any(|a| a == "--require-full");
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [path] = paths.as_slice() else {
        return fail("usage: validate_manifest <manifest.json> [--require-full]");
    };

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    let manifest = match RunManifest::from_json(&text) {
        Ok(m) => m,
        Err(e) => return fail(&format!("{path}: {e}")),
    };
    if manifest.schema_version != SCHEMA_VERSION {
        return fail(&format!(
            "{path}: schema version {} (this tool validates {SCHEMA_VERSION})",
            manifest.schema_version
        ));
    }
    // Round trip: serializing and re-parsing must be lossless.
    match RunManifest::from_json(&manifest.to_json()) {
        Ok(back) if back == manifest => {}
        Ok(_) => return fail(&format!("{path}: serialize→parse round trip is lossy")),
        Err(e) => return fail(&format!("{path}: round trip failed: {e}")),
    }

    if require_full {
        for name in stage::ALL {
            if manifest.stage(name).is_none() {
                return fail(&format!("{path}: missing stage span `{name}`"));
            }
        }
        if manifest.solver.curve.is_empty() {
            return fail(&format!("{path}: empty solver convergence curve"));
        }
        let epochs: Vec<u64> = manifest.solver.curve.iter().map(|e| e.epoch).collect();
        if !epochs.windows(2).all(|w| w[0] < w[1]) {
            return fail(&format!("{path}: solver epochs not strictly increasing"));
        }
        let by_template: u64 = manifest.constraints.by_template.iter().sum();
        if by_template != manifest.constraints.total {
            return fail(&format!(
                "{path}: per-template counts sum to {by_template}, total is {}",
                manifest.constraints.total
            ));
        }
        if !manifest.memory.tracked {
            return fail(&format!("{path}: memory accounting not tracked"));
        }
        if manifest.metrics.get("rep_frequency").is_none() {
            return fail(&format!("{path}: missing `rep_frequency` metric"));
        }
        // A full checkpoint replay never rebuilds the constraint system,
        // so the gap distribution is legitimately absent only there.
        if manifest.cache.checkpoint != "full"
            && manifest.metrics.get("constraint_gap").is_none()
        {
            return fail(&format!("{path}: missing `constraint_gap` metric"));
        }
    }

    println!(
        "{path}: valid RunManifest (schema v{}, {} stage span(s), {} curve point(s))",
        manifest.schema_version,
        manifest.stages.len(),
        manifest.solver.curve.len()
    );
    ExitCode::SUCCESS
}
