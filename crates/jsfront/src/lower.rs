//! Lowers the JS-like AST into the language-neutral IR.
//!
//! This mirrors the Python lowering in `seldon-propgraph::lower` decision
//! for decision — environment threading with strong updates, branch
//! save/merge, per-call-site inlining with a depth-3 recursion guard,
//! points-to ops for field aliasing — but resolves names with JS rules:
//! ES `import`/CommonJS `require` bindings, no implicit receiver
//! parameters, object/array literals as value unions.
//!
//! Everything downstream of the produced [`IrProgram`] (graph replay,
//! representations' backoff, constraints, solver) is shared with the
//! Python frontend and contains no per-language branches.

use crate::ast::*;
use crate::parser::parse;
use seldon_intern::{intern, Symbol};
use seldon_ir::{
    FrontendError, IrArgPos, IrEdgeKind, IrEvent, IrEventKind, IrFunc, IrOp, IrParam,
    IrPendingCall, IrProgram,
};
use seldon_propgraph::{finish_reps, Budget, BudgetExceeded, BudgetMeter, ReprCtx};
use std::collections::HashMap;

/// Maximum events tracked per variable binding; larger sets are truncated.
const MAX_FLOW_SET: usize = 8;

/// A set of event indices whose values may flow into a binding.
type FlowSet = Vec<u32>;

/// Lowers one parsed program into the language-neutral IR.
pub fn lower_js_program(program: &Program) -> IrProgram {
    let mut l = Lowerer::new();
    l.run(program);
    l.into_ir()
}

/// Lowers one parsed program under a resource [`Budget`].
///
/// # Errors
///
/// Returns [`BudgetExceeded`] if the walk trips a statement-count, depth,
/// or deadline limit; the partial IR is discarded.
pub fn lower_js_program_budgeted(
    program: &Program,
    budget: &Budget,
) -> Result<IrProgram, BudgetExceeded> {
    let mut l = Lowerer::new();
    l.meter = Some(BudgetMeter::new(budget.clone()));
    l.run(program);
    if let Some(e) = l.meter.take().and_then(BudgetMeter::into_tripped) {
        return Err(e);
    }
    Ok(l.into_ir())
}

/// Parses `source` and lowers it into the IR — the `seldon ir-dump`
/// backend for `.js` files.
///
/// # Errors
///
/// Returns a [`FrontendError`] if the source fails to lex or parse.
pub fn lower_js_source(source: &str) -> Result<IrProgram, FrontendError> {
    let program = parse(source)?;
    Ok(lower_js_program(&program))
}

// ----- representations -------------------------------------------------------

/// Splits a module specifier like `./app/models.js` into dotted-path
/// segments (`["app", "models", "js"]` → the `.js` suffix is dropped).
fn module_segments(module: &str) -> Vec<String> {
    let trimmed = module.trim_start_matches("./");
    let mut segs: Vec<String> = trimmed
        .split(['/', '.'])
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if segs.len() > 1 && segs.last().is_some_and(|s| s == "js") {
        segs.pop();
    }
    segs
}

/// Computes representation variants of a JS expression, most → least
/// specific, reusing the shared name-resolution rules in [`ReprCtx`] and
/// the shared interning/backoff in [`finish_reps`].
fn describe_syms_js(expr: &Expr, ctx: &ReprCtx) -> Vec<Symbol> {
    finish_reps(describe_inner(expr, ctx, 0))
}

/// String-resolving convenience wrapper around [`describe_syms_js`].
fn describe_js(expr: &Expr, ctx: &ReprCtx) -> Vec<String> {
    describe_syms_js(expr, ctx).iter().map(|s| s.as_str().to_string()).collect()
}

fn describe_inner(expr: &Expr, ctx: &ReprCtx, depth: usize) -> Vec<String> {
    if depth > 12 {
        return Vec::new();
    }
    match &expr.kind {
        ExprKind::Ident(n) => ctx.name_variants(n),
        ExprKind::Member { obj, prop } => describe_inner(obj, ctx, depth + 1)
            .into_iter()
            .map(|v| format!("{v}.{prop}"))
            .collect(),
        ExprKind::Call { callee, .. } => describe_inner(callee, ctx, depth + 1)
            .into_iter()
            .map(|v| format!("{v}()"))
            .collect(),
        ExprKind::Index { obj, index } => {
            let idx = render_index(index);
            describe_inner(obj, ctx, depth + 1)
                .into_iter()
                .map(|v| format!("{v}[{idx}]"))
                .collect()
        }
        _ => Vec::new(),
    }
}

fn render_index(index: &Expr) -> String {
    match &index.kind {
        ExprKind::Str(s) => format!("'{s}'"),
        ExprKind::Num(n) => n.clone(),
        _ => String::new(),
    }
}

/// Field name used for index loads/stores, matching the representation
/// rendering (`['key']`, `[0]`, `[]`).
fn index_field_name(index: &Expr) -> String {
    match &index.kind {
        ExprKind::Str(s) => format!("['{s}']"),
        ExprKind::Num(n) => format!("[{n}]"),
        _ => "[]".to_string(),
    }
}

/// Matches `require('module')` and returns the specifier.
fn require_module(expr: &Expr) -> Option<&str> {
    if let ExprKind::Call { callee, args } = &expr.kind {
        if let ExprKind::Ident(n) = &callee.kind {
            if n == "require" && args.len() == 1 {
                if let ExprKind::Str(m) = &args[0].kind {
                    return Some(m);
                }
            }
        }
    }
    None
}

// ----- lowering ---------------------------------------------------------------

/// Summary of a locally-defined function for call linking.
#[derive(Debug, Clone, Default)]
struct FuncSummary {
    /// `(name, param event)` in declaration order.
    params: Vec<(String, u32)>,
    /// Events flowing into `return` statements.
    returns: Vec<u32>,
    /// The function body, kept for per-call-site inlining.
    def: Option<FuncDecl>,
}

/// Per-function analysis scope.
struct Scope {
    ctx: ReprCtx,
    env: HashMap<String, FlowSet>,
    returns: Vec<u32>,
    /// Unique id for qualifying points-to variable names.
    scope_id: u32,
}

impl Scope {
    fn merge_env(&mut self, other: HashMap<String, FlowSet>) {
        for (k, v) in other {
            let slot = self.env.entry(k).or_default();
            for e in v {
                if !slot.contains(&e) {
                    slot.push(e);
                }
            }
            slot.truncate(MAX_FLOW_SET);
        }
    }
}

struct Lowerer {
    ir: IrProgram,
    imports: HashMap<String, Vec<String>>,
    /// Named points-to variables, memoized by `s{scope}::{name}` exactly
    /// like the Python lowering.
    var_names: HashMap<String, u32>,
    funcs: HashMap<String, FuncSummary>,
    /// Names in first-definition order, for stable IR emission.
    func_order: Vec<String>,
    /// Names currently being inlined (recursion guard / depth bound).
    inline_stack: Vec<String>,
    next_scope: u32,
    /// Resource accounting; `None` lowers without limits.
    meter: Option<BudgetMeter>,
    /// Current statement-nesting depth, fed to the meter.
    stmt_depth: usize,
}

impl Lowerer {
    fn new() -> Self {
        Lowerer {
            ir: IrProgram::default(),
            imports: HashMap::new(),
            var_names: HashMap::new(),
            funcs: HashMap::new(),
            func_order: Vec::new(),
            inline_stack: Vec::new(),
            next_scope: 0,
            meter: None,
            stmt_depth: 0,
        }
    }

    fn run(&mut self, program: &Program) {
        self.collect_imports(&program.body);
        let mut scope = self.new_scope(None, &[]);
        for stmt in &program.body {
            self.walk_stmt(stmt, &mut scope);
        }
    }

    fn into_ir(mut self) -> IrProgram {
        for name in &self.func_order {
            let s = &self.funcs[name];
            self.ir.funcs.push(IrFunc {
                qualified: name.clone(),
                params: s
                    .params
                    .iter()
                    .map(|(n, ev)| IrParam {
                        name: n.clone(),
                        event: *ev,
                        // JS has no `self`/`cls` receiver slot: every
                        // parameter binds positionally.
                        implicit: false,
                    })
                    .collect(),
                returns: s.returns.clone(),
            });
        }
        self.ir
    }

    // ----- IR emission helpers ----------------------------------------------

    fn add_event(
        &mut self,
        kind: IrEventKind,
        reps: Vec<Symbol>,
        span: seldon_ir::Span,
    ) -> u32 {
        let id = self.ir.events.len() as u32;
        self.ir.events.push(IrEvent { kind, reps, span });
        id
    }

    fn add_edge(&mut self, from: u32, to: u32) {
        self.ir.ops.push(IrOp::Edge { from, to, kind: IrEdgeKind::Argument });
    }

    fn add_edge_recv(&mut self, from: u32, to: u32) {
        self.ir.ops.push(IrOp::Edge { from, to, kind: IrEdgeKind::Receiver });
    }

    fn set_arg_position(&mut self, from: u32, to: u32, pos: IrArgPos) {
        self.ir.ops.push(IrOp::ArgPos { from, to, pos });
    }

    fn pt_var(&mut self, scope: &Scope, name: &str) -> u32 {
        let key = format!("s{}::{}", scope.scope_id, name);
        if let Some(&v) = self.var_names.get(&key) {
            return v;
        }
        let v = self.fresh_var();
        self.var_names.insert(key, v);
        v
    }

    fn fresh_var(&mut self) -> u32 {
        let v = self.ir.var_count;
        self.ir.var_count += 1;
        v
    }

    /// Resolves every import binding (ES and CommonJS) in the file into
    /// dotted paths, recursing into function/branch bodies.
    fn collect_imports(&mut self, body: &[Stmt]) {
        for stmt in body {
            match &stmt.kind {
                StmtKind::Import { bindings, module } => {
                    let segs = module_segments(module);
                    if segs.is_empty() {
                        continue;
                    }
                    for b in bindings {
                        match b {
                            ImportBinding::Default(name)
                            | ImportBinding::Namespace(name) => {
                                self.imports.insert(name.clone(), segs.clone());
                            }
                            ImportBinding::Named { exported, local } => {
                                let mut path = segs.clone();
                                path.push(exported.clone());
                                self.imports.insert(local.clone(), path);
                            }
                        }
                    }
                }
                StmtKind::VarDecl { name, pattern, init: Some(init) } => {
                    if let Some(module) = require_module(init) {
                        let segs = module_segments(module);
                        if segs.is_empty() {
                            continue;
                        }
                        if let Some(n) = name {
                            self.imports.insert(n.clone(), segs.clone());
                        }
                        for (prop, local) in pattern {
                            let mut path = segs.clone();
                            path.push(prop.clone());
                            self.imports.insert(local.clone(), path);
                        }
                    }
                }
                StmtKind::Func(def) => self.collect_imports(&def.body),
                StmtKind::If { cons, alt, .. } => {
                    self.collect_imports(cons);
                    self.collect_imports(alt);
                }
                _ => {}
            }
        }
    }

    fn new_scope(&mut self, func_name: Option<String>, params: &[String]) -> Scope {
        let ctx = ReprCtx {
            imports: self.imports.clone(),
            class_name: None,
            base_class: None,
            func_name,
            params: params.to_vec(),
            locals: HashMap::new(),
        };
        let scope_id = self.next_scope;
        self.next_scope += 1;
        Scope { ctx, env: HashMap::new(), returns: Vec::new(), scope_id }
    }

    // ----- statements -------------------------------------------------------

    fn walk_stmt(&mut self, stmt: &Stmt, sc: &mut Scope) {
        if let Some(meter) = &mut self.meter {
            if !meter.tick_statement(self.stmt_depth) {
                return;
            }
        }
        self.stmt_depth += 1;
        self.walk_stmt_inner(stmt, sc);
        self.stmt_depth -= 1;
    }

    fn walk_stmt_inner(&mut self, stmt: &Stmt, sc: &mut Scope) {
        match &stmt.kind {
            StmtKind::Import { .. } => {}
            StmtKind::Func(def) => self.walk_function(def, sc),
            StmtKind::Return(value) => {
                if let Some(v) = value {
                    let flows = self.eval(v, sc);
                    sc.returns.extend(flows);
                }
            }
            StmtKind::VarDecl { name, pattern, init } => {
                let Some(init) = init else {
                    if let Some(n) = name {
                        sc.env.insert(n.clone(), Vec::new());
                        sc.ctx.locals.remove(n);
                    }
                    return;
                };
                // A pure `require` initializer is an import, not a call:
                // the binding was collected up front and creates no event
                // (mirroring Python, where import statements are silent).
                if require_module(init).is_some() {
                    return;
                }
                let flows = self.eval(init, sc);
                let variants = describe_js(init, &sc.ctx);
                if let Some(n) = name {
                    self.bind_name(n, &flows, &variants, init, sc);
                }
                for (_, local) in pattern {
                    sc.env.insert(local.clone(), flows.clone());
                    sc.ctx.locals.remove(local);
                    let var = self.pt_var(sc, local);
                    for &e in &flows {
                        self.ir.ops.push(IrOp::Alloc { var, site: e });
                    }
                }
            }
            StmtKind::Assign { target, value } => {
                let flows = self.eval(value, sc);
                let variants = describe_js(value, &sc.ctx);
                self.assign_to(target, &flows, &variants, value, sc);
            }
            StmtKind::If { test, cons, alt } => {
                self.eval(test, sc);
                let before = sc.env.clone();
                for s in cons {
                    self.walk_stmt(s, sc);
                }
                let after_then = std::mem::replace(&mut sc.env, before);
                for s in alt {
                    self.walk_stmt(s, sc);
                }
                sc.merge_env(after_then);
            }
            StmtKind::Expr(e) => {
                self.eval(e, sc);
            }
        }
    }

    fn walk_function(&mut self, def: &FuncDecl, outer: &mut Scope) {
        let param_names: Vec<String> = def.params.iter().map(|(n, _)| n.clone()).collect();
        let mut scope = self.new_scope(Some(def.name.clone()), &param_names);
        // Free variables see enclosing (module) bindings.
        scope.env = outer.env.clone();
        scope.ctx.locals = outer.ctx.locals.clone();
        // Formal parameters are source-candidate events, represented as
        // `{func}(param {name})` exactly like Python module functions.
        let mut summary = FuncSummary::default();
        for (name, span) in &def.params {
            let reps = vec![intern(&format!("{}(param {})", def.name, name))];
            let ev = self.add_event(IrEventKind::ParamRead, reps, *span);
            scope.env.insert(name.clone(), vec![ev]);
            summary.params.push((name.clone(), ev));
        }
        for s in &def.body {
            self.walk_stmt(s, &mut scope);
        }
        summary.returns = scope.returns.clone();
        summary.def = Some(def.clone());
        if self.funcs.insert(def.name.clone(), summary).is_none() {
            self.func_order.push(def.name.clone());
        }
    }

    // ----- assignment targets -------------------------------------------------

    fn bind_name(
        &mut self,
        name: &str,
        flows: &FlowSet,
        variants: &[String],
        value: &Expr,
        sc: &mut Scope,
    ) {
        sc.env.insert(name.to_string(), flows.clone());
        if variants.is_empty() {
            sc.ctx.locals.remove(name);
        } else {
            sc.ctx.locals.insert(name.to_string(), variants.to_vec());
        }
        let var = self.pt_var(sc, name);
        for &e in flows {
            self.ir.ops.push(IrOp::Alloc { var, site: e });
        }
        if let ExprKind::Ident(m) = &value.kind {
            let from = self.pt_var(sc, m);
            self.ir.ops.push(IrOp::Copy { from, to: var });
        }
    }

    fn assign_to(
        &mut self,
        target: &Expr,
        flows: &FlowSet,
        variants: &[String],
        value: &Expr,
        sc: &mut Scope,
    ) {
        match &target.kind {
            ExprKind::Ident(n) => {
                let n = n.clone();
                self.bind_name(&n, flows, variants, value, sc);
            }
            ExprKind::Member { obj, prop } => {
                self.store_through(obj, prop, flows, sc);
            }
            ExprKind::Index { obj, index } => {
                let field = index_field_name(index);
                self.store_through(obj, &field, flows, sc);
            }
            _ => {}
        }
    }

    /// Handles `base.field = flows`: a points-to store plus a weak update
    /// of the base binding so environment flow still observes the taint.
    fn store_through(&mut self, base: &Expr, field: &str, flows: &FlowSet, sc: &mut Scope) {
        self.eval(base, sc);
        if let ExprKind::Ident(n) = &base.kind {
            let base_var = self.pt_var(sc, n);
            let value_var = self.fresh_var();
            for &e in flows {
                self.ir.ops.push(IrOp::Alloc { var: value_var, site: e });
            }
            self.ir.ops.push(IrOp::Store {
                base: base_var,
                field: field.to_string(),
                value: value_var,
            });
            let slot = sc.env.entry(n.clone()).or_default();
            for &e in flows {
                if !slot.contains(&e) {
                    slot.push(e);
                }
            }
            slot.truncate(MAX_FLOW_SET);
        }
    }

    // ----- expressions ----------------------------------------------------------

    fn eval(&mut self, expr: &Expr, sc: &mut Scope) -> FlowSet {
        match &expr.kind {
            ExprKind::Ident(n) => sc.env.get(n).cloned().unwrap_or_default(),
            ExprKind::Str(_) | ExprKind::Num(_) | ExprKind::Bool(_) | ExprKind::Null => {
                Vec::new()
            }
            ExprKind::Member { obj, prop } => {
                let base_flows = self.eval(obj, sc);
                self.read_event(expr, obj, prop, base_flows, sc)
            }
            ExprKind::Index { obj, index } => {
                let mut base_flows = self.eval(obj, sc);
                union_into(&mut base_flows, self.eval(index, sc));
                let field = index_field_name(index);
                self.read_event(expr, obj, &field, base_flows, sc)
            }
            ExprKind::Call { callee, args } => self.eval_call(expr, callee, args, sc),
            ExprKind::Object(entries) => {
                // Literals flow their property values to the whole value.
                let mut out = Vec::new();
                for (_, v) in entries {
                    union_into(&mut out, self.eval(v, sc));
                }
                out
            }
            ExprKind::Array(elems) => {
                let mut out = Vec::new();
                for e in elems {
                    union_into(&mut out, self.eval(e, sc));
                }
                out
            }
            ExprKind::Binary { left, right } => {
                let mut out = self.eval(left, sc);
                union_into(&mut out, self.eval(right, sc));
                out
            }
            ExprKind::Unary(inner) => self.eval(inner, sc),
        }
    }

    /// Creates an object-read event for `expr` (a member or index load of
    /// `field` on `base`). Falls back to pass-through flow when the
    /// expression has no stable representation.
    fn read_event(
        &mut self,
        expr: &Expr,
        base: &Expr,
        field: &str,
        base_flows: FlowSet,
        sc: &mut Scope,
    ) -> FlowSet {
        let reps = describe_syms_js(expr, &sc.ctx);
        if reps.is_empty() {
            return base_flows;
        }
        let ev = self.add_event(IrEventKind::ObjectRead, reps, expr.span);
        for &f in &base_flows {
            self.add_edge_recv(f, ev);
        }
        if let ExprKind::Ident(n) = &base.kind {
            let base_var = self.pt_var(sc, n);
            let out = self.fresh_var();
            self.ir.ops.push(IrOp::Load {
                base: base_var,
                field: field.to_string(),
                target: out,
            });
            self.ir.ops.push(IrOp::PtLoad { event: ev, var: out });
        }
        vec![ev]
    }

    fn eval_call(
        &mut self,
        expr: &Expr,
        callee: &Expr,
        args: &[Expr],
        sc: &mut Scope,
    ) -> FlowSet {
        // Receiver/base flows: for `x.m(...)` the object chain flows into
        // the call event.
        let recv_flows = match &callee.kind {
            ExprKind::Member { obj, .. } => self.eval(obj, sc),
            ExprKind::Ident(n) => sc.env.get(n).cloned().unwrap_or_default(),
            _ => self.eval(callee, sc),
        };
        let arg_flows: Vec<FlowSet> = args.iter().map(|a| self.eval(a, sc)).collect();

        let reps = describe_syms_js(expr, &sc.ctx);
        let call_event = if reps.is_empty() {
            None
        } else {
            Some(self.add_event(IrEventKind::Call, reps, expr.span))
        };

        if let Some(ev) = call_event {
            for &f in &recv_flows {
                self.add_edge_recv(f, ev);
                self.set_arg_position(f, ev, IrArgPos::Receiver);
            }
            for (i, flows) in arg_flows.iter().enumerate() {
                for &f in flows {
                    self.add_edge(f, ev);
                    self.set_arg_position(f, ev, IrArgPos::Positional(i.min(255) as u8));
                }
            }
        }

        // Link calls to locally-defined functions.
        if let ExprKind::Ident(q) = &callee.kind {
            let q = q.clone();
            let inlinable = self.inline_stack.len() < 3
                && !self.inline_stack.iter().any(|n| n == &q);
            let callee_info = if inlinable {
                self.funcs
                    .get(&q)
                    .cloned()
                    .and_then(|mut info| info.def.take().map(|def| (info, def)))
            } else {
                None
            };
            if let Some((_, def)) = callee_info {
                let returns = self.inline_call(&q, &def, &arg_flows);
                if let Some(ev) = call_event {
                    for r in returns {
                        self.add_edge(r, ev);
                    }
                }
            } else {
                self.ir.pending.push(IrPendingCall {
                    qualified: q,
                    arg_flows: arg_flows.clone(),
                    kwarg_flows: Vec::new(),
                    call_event,
                });
            }
        }

        match call_event {
            Some(ev) => vec![ev],
            None => {
                let mut out = recv_flows;
                for flows in arg_flows {
                    union_into(&mut out, flows);
                }
                out
            }
        }
    }

    /// Re-analyzes `def`'s body with parameters bound to the call's
    /// argument flows, returning the events that flow into its `return`s.
    fn inline_call(&mut self, qualified: &str, def: &FuncDecl, arg_flows: &[FlowSet]) -> FlowSet {
        let param_names: Vec<String> = def.params.iter().map(|(n, _)| n.clone()).collect();
        let mut scope = self.new_scope(Some(def.name.clone()), &param_names);
        for (i, flows) in arg_flows.iter().enumerate() {
            if let Some(name) = param_names.get(i) {
                scope.env.insert(name.clone(), flows.clone());
            }
        }
        self.inline_stack.push(qualified.to_string());
        for stmt in &def.body {
            self.walk_stmt(stmt, &mut scope);
        }
        self.inline_stack.pop();
        scope.returns
    }
}

fn union_into(dst: &mut FlowSet, src: FlowSet) {
    for e in src {
        if !dst.contains(&e) {
            dst.push(e);
        }
    }
    dst.truncate(MAX_FLOW_SET);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_emits_events_in_walk_order() {
        let ir = lower_js_source(
            "import { f } from 'm';\nconst x = f(1);\nconst y = x.data;\n",
        )
        .expect("lowers");
        assert_eq!(ir.events.len(), 2);
        assert_eq!(ir.events[0].kind, IrEventKind::Call);
        assert_eq!(ir.events[1].kind, IrEventKind::ObjectRead);
        assert!(ir.ops.iter().any(|op| matches!(
            op,
            IrOp::Edge { from: 0, to: 1, kind: IrEdgeKind::Receiver }
        )));
    }

    #[test]
    fn es_and_require_imports_resolve() {
        let ir = lower_js_source(
            "import express from 'express';\nconst app = express();\n",
        )
        .expect("lowers");
        assert_eq!(ir.events.len(), 1);
        assert_eq!(ir.events[0].reps[0].as_str(), "express()");

        let ir = lower_js_source(
            "const fs = require('fs');\nfs.readFile(p);\n",
        )
        .expect("lowers");
        // The require itself is silent; the member call resolves through it.
        assert_eq!(ir.events.len(), 1);
        assert_eq!(ir.events[0].reps[0].as_str(), "fs.readFile()");
    }

    #[test]
    fn named_import_gets_module_prefix() {
        let ir = lower_js_source(
            "import { query } from './db/pool.js';\nquery(sql);\n",
        )
        .expect("lowers");
        let reps: Vec<&str> = ir.events[0].reps.iter().map(|s| s.as_str()).collect();
        assert_eq!(reps[0], "db.pool.query()");
        assert!(reps.contains(&"query()"), "bare named-import variant: {reps:?}");
    }

    #[test]
    fn destructured_require_binds_each_name() {
        let ir = lower_js_source(
            "const { getById, save: persist } = require('./models');\ngetById(id);\npersist(row);\n",
        )
        .expect("lowers");
        let reps0: Vec<&str> = ir.events[0].reps.iter().map(|s| s.as_str()).collect();
        let reps1: Vec<&str> = ir.events[1].reps.iter().map(|s| s.as_str()).collect();
        assert_eq!(reps0[0], "models.getById()");
        assert_eq!(reps1[0], "models.save()");
    }

    #[test]
    fn function_params_are_events_and_summaries() {
        let ir = lower_js_source(
            "function handler(req, res) {\n  return req;\n}\n",
        )
        .expect("lowers");
        assert_eq!(ir.funcs.len(), 1);
        let f = &ir.funcs[0];
        assert_eq!(f.qualified, "handler");
        assert_eq!(f.params.len(), 2);
        assert!(!f.params[0].implicit, "JS params are never implicit");
        assert_eq!(f.returns, vec![f.params[0].event]);
        assert_eq!(ir.events[0].reps[0].as_str(), "handler(param req)");
    }

    #[test]
    fn if_branches_merge_flows() {
        let ir = lower_js_source(
            "import { source } from 'm';\nlet x = null;\nif (c) { x = source(); } else { x = null; }\nsink(x);\n",
        )
        .expect("lowers");
        // sink(x) receives the call event from the then-branch.
        let sink = ir
            .events
            .iter()
            .position(|e| e.reps.iter().any(|s| s.as_str() == "sink()"))
            .expect("sink event") as u32;
        assert!(ir.ops.iter().any(|op| matches!(
            op,
            IrOp::Edge { to, kind: IrEdgeKind::Argument, .. } if *to == sink
        )));
    }

    #[test]
    fn local_function_calls_link_or_pend() {
        let ir = lower_js_source(
            "function pick(v) { return v; }\nconst out = pick(data);\n",
        )
        .expect("lowers");
        // Defined before use: inlined, not pending.
        assert!(ir.pending.is_empty(), "inlinable call should not pend");

        let ir = lower_js_source("const out = helper(data);\nfunction helper(v) { return v; }\n")
            .expect("lowers");
        assert_eq!(ir.pending.len(), 1);
        assert_eq!(ir.pending[0].qualified, "helper");
    }

    #[test]
    fn lower_budgeted_trips() {
        let program = parse("var a = 1;\nvar b = 2;\nvar c = 3;\n").unwrap();
        let tight = Budget { max_statements: 1, ..Budget::unlimited() };
        let err = lower_js_program_budgeted(&program, &tight).unwrap_err();
        assert!(matches!(err, BudgetExceeded::Statements { .. }));
    }
}
