//! Tokenizer for the JS-like subset.
//!
//! Free-form (no indentation sensitivity): newlines are skipped like other
//! whitespace and statements are terminated by `;` or `}`. Comments are
//! `//` to end of line and `/* ... */`.

use seldon_ir::{LexError, LexErrorKind, Span};
use std::fmt;

/// A token kind of the JS-like subset.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier (also covers non-keyword words).
    Ident(String),
    /// String literal (single or double quoted), unescaped contents.
    Str(String),
    /// Numeric literal, kept as written.
    Num(String),
    /// `function`
    Function,
    /// `var`
    Var,
    /// `let`
    Let,
    /// `const`
    Const,
    /// `return`
    Return,
    /// `if`
    If,
    /// `else`
    Else,
    /// `import`
    Import,
    /// `from`
    From,
    /// `as`
    As,
    /// `new`
    New,
    /// `true`
    True,
    /// `false`
    False,
    /// `null`
    Null,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `=`
    Eq,
    /// `+`
    Plus,
    /// Any other single operator character (`-*/%<>!&|?`), kept for
    /// expression-level recovery.
    Op(char),
    /// End of input.
    EndOfFile,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Str(_) => write!(f, "string literal"),
            TokenKind::Num(n) => write!(f, "number `{n}`"),
            TokenKind::Function => write!(f, "`function`"),
            TokenKind::Var => write!(f, "`var`"),
            TokenKind::Let => write!(f, "`let`"),
            TokenKind::Const => write!(f, "`const`"),
            TokenKind::Return => write!(f, "`return`"),
            TokenKind::If => write!(f, "`if`"),
            TokenKind::Else => write!(f, "`else`"),
            TokenKind::Import => write!(f, "`import`"),
            TokenKind::From => write!(f, "`from`"),
            TokenKind::As => write!(f, "`as`"),
            TokenKind::New => write!(f, "`new`"),
            TokenKind::True => write!(f, "`true`"),
            TokenKind::False => write!(f, "`false`"),
            TokenKind::Null => write!(f, "`null`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Op(c) => write!(f, "`{c}`"),
            TokenKind::EndOfFile => write!(f, "end of file"),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind (and payload).
    pub kind: TokenKind,
    /// Where the token sits in the source.
    pub span: Span,
}

/// Tokenizes `source` into a token stream ending with `EndOfFile`.
///
/// # Errors
///
/// Returns a [`LexError`] on an unterminated string/comment or a character
/// no token can start with.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    macro_rules! span_at {
        ($start:expr, $len:expr, $line:expr, $col:expr) => {
            Span::new($start as u32, ($start + $len) as u32, $line, $col)
        };
    }
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let (sl, sc, start) = (line, col, i);
                i += 2;
                col += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LexError::new(
                            LexErrorKind::UnterminatedComment,
                            span_at!(start, 2, sl, sc),
                        ));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        col += 2;
                        break;
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = bytes[i];
                let (sl, sc, start) = (line, col, i);
                i += 1;
                col += 1;
                let mut text = String::new();
                loop {
                    if i >= bytes.len() || bytes[i] == b'\n' {
                        return Err(LexError::new(
                            LexErrorKind::UnterminatedString,
                            span_at!(start, 1, sl, sc),
                        ));
                    }
                    if bytes[i] == quote {
                        i += 1;
                        col += 1;
                        break;
                    }
                    if bytes[i] == b'\\' && i + 1 < bytes.len() {
                        let esc = bytes[i + 1] as char;
                        text.push(match esc {
                            'n' => '\n',
                            't' => '\t',
                            other => other,
                        });
                        i += 2;
                        col += 2;
                        continue;
                    }
                    text.push(bytes[i] as char);
                    i += 1;
                    col += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Str(text),
                    span: span_at!(start, i - start, sl, sc),
                });
            }
            _ if c.is_ascii_digit() => {
                let (sl, sc, start) = (line, col, i);
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'.')
                {
                    // Stop a trailing method chain like `1.toFixed` cleanly:
                    // only consume a dot followed by a digit.
                    if bytes[i] == b'.'
                        && !bytes.get(i + 1).is_some_and(|b| (*b as char).is_ascii_digit())
                    {
                        break;
                    }
                    i += 1;
                    col += 1;
                }
                let text = &source[start..i];
                tokens.push(Token {
                    kind: TokenKind::Num(text.to_string()),
                    span: span_at!(start, i - start, sl, sc),
                });
            }
            _ if c.is_ascii_alphabetic() || c == '_' || c == '$' => {
                let (sl, sc, start) = (line, col, i);
                while i < bytes.len() {
                    let w = bytes[i] as char;
                    if w.is_ascii_alphanumeric() || w == '_' || w == '$' {
                        i += 1;
                        col += 1;
                    } else {
                        break;
                    }
                }
                let word = &source[start..i];
                let kind = match word {
                    "function" => TokenKind::Function,
                    "var" => TokenKind::Var,
                    "let" => TokenKind::Let,
                    "const" => TokenKind::Const,
                    "return" => TokenKind::Return,
                    "if" => TokenKind::If,
                    "else" => TokenKind::Else,
                    "import" => TokenKind::Import,
                    "from" => TokenKind::From,
                    "as" => TokenKind::As,
                    "new" => TokenKind::New,
                    "true" => TokenKind::True,
                    "false" => TokenKind::False,
                    "null" | "undefined" => TokenKind::Null,
                    _ => TokenKind::Ident(word.to_string()),
                };
                tokens.push(Token { kind, span: span_at!(start, i - start, sl, sc) });
            }
            _ => {
                let kind = match c {
                    '(' => TokenKind::LParen,
                    ')' => TokenKind::RParen,
                    '{' => TokenKind::LBrace,
                    '}' => TokenKind::RBrace,
                    '[' => TokenKind::LBracket,
                    ']' => TokenKind::RBracket,
                    ',' => TokenKind::Comma,
                    ';' => TokenKind::Semi,
                    '.' => TokenKind::Dot,
                    ':' => TokenKind::Colon,
                    '=' => {
                        // `==`, `===`, `=>` are comparison/arrow ops.
                        if bytes.get(i + 1) == Some(&b'=') || bytes.get(i + 1) == Some(&b'>') {
                            let (sl, sc, start) = (line, col, i);
                            let mut len = 2;
                            if bytes.get(i + 2) == Some(&b'=') {
                                len = 3;
                            }
                            tokens.push(Token {
                                kind: TokenKind::Op('='),
                                span: span_at!(start, len, sl, sc),
                            });
                            i += len;
                            col += len as u32;
                            continue;
                        }
                        TokenKind::Eq
                    }
                    '+' => TokenKind::Plus,
                    '-' | '*' | '/' | '%' | '<' | '>' | '!' | '&' | '|' | '?' => {
                        TokenKind::Op(c)
                    }
                    other => {
                        return Err(LexError::new(
                            LexErrorKind::UnexpectedChar(other),
                            span_at!(i, other.len_utf8(), line, col),
                        ));
                    }
                };
                tokens.push(Token { kind, span: span_at!(i, 1, line, col) });
                i += 1;
                col += 1;
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::EndOfFile,
        span: Span::new(i as u32, i as u32, line, col),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).expect("lexes").into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        let ks = kinds("const x = require('express');");
        assert_eq!(
            ks,
            vec![
                TokenKind::Const,
                TokenKind::Ident("x".into()),
                TokenKind::Eq,
                TokenKind::Ident("require".into()),
                TokenKind::LParen,
                TokenKind::Str("express".into()),
                TokenKind::RParen,
                TokenKind::Semi,
                TokenKind::EndOfFile,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("// line\nx /* block\nspans */ = 1;");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Eq,
                TokenKind::Num("1".into()),
                TokenKind::Semi,
                TokenKind::EndOfFile,
            ]
        );
    }

    #[test]
    fn string_escapes() {
        let ks = kinds(r#"s = "a\"b";"#);
        assert!(matches!(&ks[2], TokenKind::Str(s) if s == "a\"b"));
    }

    #[test]
    fn spans_track_lines() {
        let toks = lex("x\ny").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[1].span.col, 1);
    }

    #[test]
    fn unterminated_string_errors() {
        let e = lex("x = 'oops").unwrap_err();
        assert!(matches!(e.kind, LexErrorKind::UnterminatedString));
        let e = lex("/* never ends").unwrap_err();
        assert!(matches!(e.kind, LexErrorKind::UnterminatedComment));
    }

    #[test]
    fn numbers_with_decimals() {
        let ks = kinds("a = 3.25;");
        assert!(matches!(&ks[2], TokenKind::Num(n) if n == "3.25"));
    }

    #[test]
    fn eq_variants() {
        let ks = kinds("a == b === c => d = e");
        let ops: Vec<_> = ks
            .iter()
            .filter(|k| matches!(k, TokenKind::Op('=') | TokenKind::Eq))
            .collect();
        assert_eq!(ops.len(), 4); // ==, ===, =>, =
        assert!(matches!(ops[3], TokenKind::Eq));
    }
}
