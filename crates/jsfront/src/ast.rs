//! AST of the JS-like subset.
//!
//! Deliberately small: the subset covers what the corpus generator emits
//! and what the lowering needs — functions, calls, member chains,
//! assignments, `var`/`let`/`const`, `if`/`else`, object and array
//! literals, and both ES (`import ... from`) and CommonJS (`require`)
//! imports.

use seldon_ir::Span;

/// A parsed file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Top-level statements in source order.
    pub body: Vec<Stmt>,
}

/// One binding introduced by an ES import statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ImportBinding {
    /// `import name from 'mod'` — the default export.
    Default(String),
    /// `import * as name from 'mod'` — the whole namespace.
    Namespace(String),
    /// `import { exported as local } from 'mod'` (`local == exported`
    /// without `as`).
    Named {
        /// Exported name in the module.
        exported: String,
        /// Name bound locally.
        local: String,
    },
}

/// A statement with its span.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// The statement variant.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

/// Statement variants.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `import ... from 'module'`.
    Import {
        /// The bindings introduced.
        bindings: Vec<ImportBinding>,
        /// The module specifier string.
        module: String,
    },
    /// `function name(params) { body }`.
    Func(FuncDecl),
    /// `var`/`let`/`const` declaration (single declarator).
    VarDecl {
        /// Bound name (simple declarator), or `None` for a destructuring
        /// pattern carried in `pattern`.
        name: Option<String>,
        /// `{a, b: c}` destructuring entries as `(property, local)` pairs.
        pattern: Vec<(String, String)>,
        /// Initializer, if present.
        init: Option<Expr>,
    },
    /// `target = value` (target may be a name, member, or index).
    Assign {
        /// Assignment target.
        target: Expr,
        /// Assigned value.
        value: Expr,
    },
    /// `return expr?`.
    Return(Option<Expr>),
    /// `if (test) { cons } else { alt }`.
    If {
        /// Condition.
        test: Expr,
        /// Then-branch statements.
        cons: Vec<Stmt>,
        /// Else-branch statements (empty without `else`).
        alt: Vec<Stmt>,
    },
    /// A bare expression statement.
    Expr(Expr),
}

/// A function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// Parameters as `(name, span)` in order.
    pub params: Vec<(String, Span)>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// An expression with its span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression variant.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

/// Expression variants.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// A bare identifier.
    Ident(String),
    /// A string literal.
    Str(String),
    /// A numeric literal.
    Num(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null` / `undefined`.
    Null,
    /// `obj.prop`.
    Member {
        /// The object expression.
        obj: Box<Expr>,
        /// The property name.
        prop: String,
    },
    /// `obj[index]`.
    Index {
        /// The object expression.
        obj: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
    },
    /// `callee(args)` — `new X(...)` parses to this too.
    Call {
        /// The callee expression.
        callee: Box<Expr>,
        /// Arguments in order.
        args: Vec<Expr>,
    },
    /// `{ key: value, ... }`.
    Object(Vec<(String, Expr)>),
    /// `[ a, b, ... ]`.
    Array(Vec<Expr>),
    /// Any binary operation (`a + b`, comparisons, logic): flow is the
    /// union of both sides, so the operator itself is not kept.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// A unary operation (`!x`, `-x`): flow passes through.
    Unary(Box<Expr>),
}
