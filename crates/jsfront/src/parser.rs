//! Recursive-descent parser for the JS-like subset.
//!
//! Two entry points mirror the Python frontend: [`parse`] fails on the
//! first error; [`parse_lenient`] skips the malformed statement (scanning
//! to the next `;` or block boundary) and reports it, analyzing the rest.

use crate::ast::*;
use crate::lexer::{lex, Token, TokenKind};
use seldon_ir::{FrontendError, ParseError, Span};

/// Parses a whole file strictly.
///
/// # Errors
///
/// Returns the first [`FrontendError`] encountered.
pub fn parse(source: &str) -> Result<Program, FrontendError> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0, lenient: false, errors: Vec::new() };
    let mut body = Vec::new();
    while !p.at_eof() {
        body.push(p.statement()?);
    }
    Ok(Program { body })
}

/// Parses a whole file, skipping malformed statements.
///
/// A lex error is unrecoverable (token boundaries are unknown) and yields
/// an empty program with one error.
pub fn parse_lenient(source: &str) -> (Program, Vec<FrontendError>) {
    let tokens = match lex(source) {
        Ok(t) => t,
        Err(e) => return (Program::default(), vec![e.into()]),
    };
    let mut p = Parser { tokens, pos: 0, lenient: true, errors: Vec::new() };
    let mut body = Vec::new();
    while !p.at_eof() {
        let start = p.pos;
        match p.statement() {
            Ok(s) => body.push(s),
            Err(e) => {
                p.errors.push(e);
                if p.pos == start {
                    p.pos += 1;
                }
                p.skip_to_recovery_point();
            }
        }
    }
    (Program { body }, p.errors)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    lenient: bool,
    errors: Vec<FrontendError>,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek().kind, TokenKind::EndOfFile)
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if !self.at_eof() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<Token, FrontendError> {
        if self.peek().kind == kind {
            Ok(self.bump())
        } else {
            let t = self.peek();
            Err(ParseError::new(what, &t.kind, t.span).into())
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Span), FrontendError> {
        match &self.peek().kind {
            TokenKind::Ident(n) => {
                let n = n.clone();
                let span = self.peek().span;
                self.bump();
                Ok((n, span))
            }
            other => Err(ParseError::new(what, other, self.peek().span).into()),
        }
    }

    /// After an error: skip ahead past the next `;`, or stop before a `}` /
    /// top-level statement keyword, so the next statement parses cleanly.
    fn skip_to_recovery_point(&mut self) {
        let mut depth = 0usize;
        while !self.at_eof() {
            match &self.peek().kind {
                TokenKind::Semi if depth == 0 => {
                    self.bump();
                    return;
                }
                TokenKind::LBrace | TokenKind::LParen | TokenKind::LBracket => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::RBrace | TokenKind::RParen | TokenKind::RBracket => {
                    if depth == 0 {
                        // Don't consume a closing brace that ends an
                        // enclosing block.
                        return;
                    }
                    depth -= 1;
                    self.bump();
                }
                TokenKind::Function | TokenKind::Import if depth == 0 => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    // ----- statements -------------------------------------------------------

    fn statement(&mut self) -> Result<Stmt, FrontendError> {
        let start = self.peek().span;
        match &self.peek().kind {
            TokenKind::Import => self.import_stmt(),
            TokenKind::Function => {
                self.bump();
                let (name, _) = self.ident("function name")?;
                let mut params = Vec::new();
                self.expect(TokenKind::LParen, "`(`")?;
                while !matches!(self.peek().kind, TokenKind::RParen) {
                    let (p, sp) = self.ident("parameter name")?;
                    params.push((p, sp));
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::RParen, "`)`")?;
                let body = self.block()?;
                Ok(Stmt {
                    kind: StmtKind::Func(FuncDecl { name, params, body }),
                    span: start,
                })
            }
            TokenKind::Var | TokenKind::Let | TokenKind::Const => {
                self.bump();
                if self.eat(&TokenKind::LBrace) {
                    // Destructuring: `const {a, b: c} = expr;`
                    let mut pattern = Vec::new();
                    while !matches!(self.peek().kind, TokenKind::RBrace) {
                        let (prop, _) = self.ident("destructured name")?;
                        let local = if self.eat(&TokenKind::Colon) {
                            self.ident("local name")?.0
                        } else {
                            prop.clone()
                        };
                        pattern.push((prop, local));
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(TokenKind::RBrace, "`}`")?;
                    self.expect(TokenKind::Eq, "`=`")?;
                    let init = self.expression()?;
                    self.eat(&TokenKind::Semi);
                    return Ok(Stmt {
                        kind: StmtKind::VarDecl { name: None, pattern, init: Some(init) },
                        span: start,
                    });
                }
                let (name, _) = self.ident("variable name")?;
                let init = if self.eat(&TokenKind::Eq) {
                    Some(self.expression()?)
                } else {
                    None
                };
                self.eat(&TokenKind::Semi);
                Ok(Stmt {
                    kind: StmtKind::VarDecl { name: Some(name), pattern: Vec::new(), init },
                    span: start,
                })
            }
            TokenKind::Return => {
                self.bump();
                let value = if matches!(
                    self.peek().kind,
                    TokenKind::Semi | TokenKind::RBrace | TokenKind::EndOfFile
                ) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.eat(&TokenKind::Semi);
                Ok(Stmt { kind: StmtKind::Return(value), span: start })
            }
            TokenKind::If => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                let test = self.expression()?;
                self.expect(TokenKind::RParen, "`)`")?;
                let cons = self.block_or_single()?;
                let alt = if self.eat(&TokenKind::Else) {
                    if matches!(self.peek().kind, TokenKind::If) {
                        vec![self.statement()?]
                    } else {
                        self.block_or_single()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt { kind: StmtKind::If { test, cons, alt }, span: start })
            }
            _ => {
                let expr = self.expression()?;
                if self.eat(&TokenKind::Eq) {
                    let value = self.expression()?;
                    self.eat(&TokenKind::Semi);
                    return Ok(Stmt {
                        kind: StmtKind::Assign { target: expr, value },
                        span: start,
                    });
                }
                self.eat(&TokenKind::Semi);
                Ok(Stmt { kind: StmtKind::Expr(expr), span: start })
            }
        }
    }

    fn import_stmt(&mut self) -> Result<Stmt, FrontendError> {
        let start = self.peek().span;
        self.bump(); // import
        let mut bindings = Vec::new();
        match &self.peek().kind {
            // `import * as ns from 'mod'`
            TokenKind::Op('*') => {
                self.bump();
                self.expect(TokenKind::As, "`as`")?;
                let (name, _) = self.ident("namespace name")?;
                bindings.push(ImportBinding::Namespace(name));
            }
            // `import { a, b as c } from 'mod'`
            TokenKind::LBrace => {
                self.bump();
                while !matches!(self.peek().kind, TokenKind::RBrace) {
                    let (exported, _) = self.ident("imported name")?;
                    let local = if self.eat(&TokenKind::As) {
                        self.ident("local name")?.0
                    } else {
                        exported.clone()
                    };
                    bindings.push(ImportBinding::Named { exported, local });
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::RBrace, "`}`")?;
            }
            // `import name from 'mod'` (optionally `, { a, b }`)
            _ => {
                let (name, _) = self.ident("default import name")?;
                bindings.push(ImportBinding::Default(name));
                if self.eat(&TokenKind::Comma) {
                    self.expect(TokenKind::LBrace, "`{`")?;
                    while !matches!(self.peek().kind, TokenKind::RBrace) {
                        let (exported, _) = self.ident("imported name")?;
                        let local = if self.eat(&TokenKind::As) {
                            self.ident("local name")?.0
                        } else {
                            exported.clone()
                        };
                        bindings.push(ImportBinding::Named { exported, local });
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(TokenKind::RBrace, "`}`")?;
                }
            }
        }
        self.expect(TokenKind::From, "`from`")?;
        let module = match &self.peek().kind {
            TokenKind::Str(s) => {
                let s = s.clone();
                self.bump();
                s
            }
            other => {
                return Err(ParseError::new("module string", other, self.peek().span).into())
            }
        };
        self.eat(&TokenKind::Semi);
        Ok(Stmt { kind: StmtKind::Import { bindings, module }, span: start })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, FrontendError> {
        self.expect(TokenKind::LBrace, "`{`")?;
        let mut body = Vec::new();
        while !matches!(self.peek().kind, TokenKind::RBrace | TokenKind::EndOfFile) {
            let start = self.pos;
            match self.statement() {
                Ok(s) => body.push(s),
                Err(e) if self.lenient => {
                    // Degrade per statement inside blocks too, so one bad
                    // line doesn't drop the whole enclosing function.
                    self.errors.push(e);
                    if self.pos == start {
                        self.pos += 1;
                    }
                    self.skip_to_recovery_point();
                }
                Err(e) => return Err(e),
            }
        }
        self.expect(TokenKind::RBrace, "`}`")?;
        Ok(body)
    }

    fn block_or_single(&mut self) -> Result<Vec<Stmt>, FrontendError> {
        if matches!(self.peek().kind, TokenKind::LBrace) {
            self.block()
        } else {
            Ok(vec![self.statement()?])
        }
    }

    // ----- expressions --------------------------------------------------------

    fn expression(&mut self) -> Result<Expr, FrontendError> {
        let mut left = self.unary()?;
        // All binary operators flatten to flow-union nodes.
        while matches!(self.peek().kind, TokenKind::Plus | TokenKind::Op(_)) {
            self.bump();
            let right = self.unary()?;
            let span = left.span.merge(right.span);
            left = Expr {
                kind: ExprKind::Binary { left: Box::new(left), right: Box::new(right) },
                span,
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, FrontendError> {
        if matches!(self.peek().kind, TokenKind::Op('!') | TokenKind::Op('-')) {
            let start = self.peek().span;
            self.bump();
            let inner = self.unary()?;
            let span = start.merge(inner.span);
            return Ok(Expr { kind: ExprKind::Unary(Box::new(inner)), span });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, FrontendError> {
        let mut expr = self.primary()?;
        loop {
            match &self.peek().kind {
                TokenKind::Dot => {
                    self.bump();
                    let (prop, pspan) = self.ident("property name")?;
                    let span = expr.span.merge(pspan);
                    expr = Expr {
                        kind: ExprKind::Member { obj: Box::new(expr), prop },
                        span,
                    };
                }
                TokenKind::LBracket => {
                    self.bump();
                    let index = self.expression()?;
                    let close = self.expect(TokenKind::RBracket, "`]`")?;
                    let span = expr.span.merge(close.span);
                    expr = Expr {
                        kind: ExprKind::Index { obj: Box::new(expr), index: Box::new(index) },
                        span,
                    };
                }
                TokenKind::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    while !matches!(self.peek().kind, TokenKind::RParen) {
                        args.push(self.expression()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    let close = self.expect(TokenKind::RParen, "`)`")?;
                    let span = expr.span.merge(close.span);
                    expr = Expr {
                        kind: ExprKind::Call { callee: Box::new(expr), args },
                        span,
                    };
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn primary(&mut self) -> Result<Expr, FrontendError> {
        let t = self.peek().clone();
        match &t.kind {
            TokenKind::Ident(n) => {
                self.bump();
                Ok(Expr { kind: ExprKind::Ident(n.clone()), span: t.span })
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr { kind: ExprKind::Str(s.clone()), span: t.span })
            }
            TokenKind::Num(n) => {
                self.bump();
                Ok(Expr { kind: ExprKind::Num(n.clone()), span: t.span })
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr { kind: ExprKind::Bool(true), span: t.span })
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr { kind: ExprKind::Bool(false), span: t.span })
            }
            TokenKind::Null => {
                self.bump();
                Ok(Expr { kind: ExprKind::Null, span: t.span })
            }
            TokenKind::New => {
                // `new X(...)` is flow-equivalent to the call itself.
                self.bump();
                self.postfix()
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expression()?;
                self.expect(TokenKind::RParen, "`)`")?;
                Ok(inner)
            }
            TokenKind::LBrace => {
                self.bump();
                let mut props = Vec::new();
                while !matches!(self.peek().kind, TokenKind::RBrace) {
                    let key = match &self.peek().kind {
                        TokenKind::Ident(k) => k.clone(),
                        TokenKind::Str(k) => k.clone(),
                        other => {
                            return Err(ParseError::new(
                                "property key",
                                other,
                                self.peek().span,
                            )
                            .into())
                        }
                    };
                    let key_span = self.peek().span;
                    self.bump();
                    let value = if self.eat(&TokenKind::Colon) {
                        self.expression()?
                    } else {
                        // Shorthand `{ name }`.
                        Expr { kind: ExprKind::Ident(key.clone()), span: key_span }
                    };
                    props.push((key, value));
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                let close = self.expect(TokenKind::RBrace, "`}`")?;
                Ok(Expr { kind: ExprKind::Object(props), span: t.span.merge(close.span) })
            }
            TokenKind::LBracket => {
                self.bump();
                let mut elems = Vec::new();
                while !matches!(self.peek().kind, TokenKind::RBracket) {
                    elems.push(self.expression()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                let close = self.expect(TokenKind::RBracket, "`]`")?;
                Ok(Expr { kind: ExprKind::Array(elems), span: t.span.merge(close.span) })
            }
            other => Err(ParseError::new("expression", other, t.span).into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_imports_and_require() {
        let p = parse(
            "import express from 'express';\nimport { get, post as p } from 'http';\nimport * as fs from 'fs';\nconst db = require('pg');\n",
        )
        .expect("parses");
        assert_eq!(p.body.len(), 4);
        assert!(matches!(&p.body[0].kind, StmtKind::Import { bindings, module }
            if module == "express" && bindings.len() == 1));
        assert!(matches!(&p.body[1].kind, StmtKind::Import { bindings, .. }
            if bindings.len() == 2));
    }

    #[test]
    fn parses_function_and_calls() {
        let p = parse(
            "function handler(req, res) {\n  const name = req.query.name;\n  res.send(name);\n  return name;\n}\n",
        )
        .expect("parses");
        let StmtKind::Func(f) = &p.body[0].kind else { panic!("not a func") };
        assert_eq!(f.name, "handler");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.body.len(), 3);
    }

    #[test]
    fn parses_member_index_chains() {
        let p = parse("x = a.b['k'].c(1, d);\n").expect("parses");
        assert!(matches!(&p.body[0].kind, StmtKind::Assign { .. }));
    }

    #[test]
    fn parses_object_and_array_literals() {
        let p = parse("f({ name: v, 'k': 2, shorthand }, [1, x]);\n").expect("parses");
        let StmtKind::Expr(e) = &p.body[0].kind else { panic!() };
        let ExprKind::Call { args, .. } = &e.kind else { panic!() };
        assert_eq!(args.len(), 2);
        assert!(matches!(&args[0].kind, ExprKind::Object(props) if props.len() == 3));
    }

    #[test]
    fn parses_if_else_and_new() {
        let p = parse(
            "if (x) { y = new Client(cfg); } else if (z) { w = 1; } else { w = 2; }\n",
        )
        .expect("parses");
        assert!(matches!(&p.body[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn strict_rejects_garbage() {
        let err = parse("const = 1;\n").unwrap_err();
        assert!(err.to_string().contains("expected variable name"));
    }

    #[test]
    fn lenient_skips_broken_statements() {
        let (p, errors) =
            parse_lenient("x = f();\nconst = broken;\ny = g(x);\n");
        assert_eq!(errors.len(), 1);
        assert_eq!(p.body.len(), 2);
    }

    #[test]
    fn lenient_recovers_inside_blocks() {
        let (p, errors) = parse_lenient(
            "function h(a) {\n  const = nope;\n  return a;\n}\nz = h(1);\n",
        );
        assert_eq!(errors.len(), 1);
        assert_eq!(p.body.len(), 2, "function and trailing statement survive");
    }
}
