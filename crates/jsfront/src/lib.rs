//! # seldon-jsfront
//!
//! A JS-like subset frontend for the Seldon reproduction, proving the
//! language-neutral IR split: this crate lexes, parses, and lowers
//! JavaScript-flavored source (functions, calls, member chains,
//! assignments, `var`/`let`/`const`, ES and CommonJS imports) into the
//! same [`seldon_ir::IrProgram`] stream the Python frontend emits. Graph
//! construction, representations backoff, constraints, the solver, and
//! the taint pipeline are all reused unchanged from `seldon-propgraph`
//! onward — no per-language branches exist past the IR boundary.
//!
//! ## Example
//!
//! ```
//! use seldon_jsfront::build_js_source;
//! use seldon_propgraph::FileId;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = build_js_source(
//!     "const express = require('express');\nconst app = express();\n",
//!     FileId(0),
//! )?;
//! assert!(graph.event_count() >= 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use lower::{lower_js_program, lower_js_program_budgeted, lower_js_source};
pub use parser::{parse, parse_lenient};

use seldon_ir::FrontendError;
use seldon_propgraph::{
    build_ir, Budget, BudgetExceeded, BuildError, BuildTimings, FileId, PropagationGraph,
};
use std::time::Instant;

/// Checks the source-size budget shared by the budgeted entry points
/// (mirrors the Python frontend's pre-parse gate).
fn check_source_size(source: &str, budget: &Budget) -> Result<(), BudgetExceeded> {
    if source.len() > budget.max_source_bytes {
        return Err(BudgetExceeded::SourceBytes {
            limit: budget.max_source_bytes,
            actual: source.len(),
        });
    }
    Ok(())
}

/// Parses JS-like `source` and builds its propagation graph.
///
/// # Errors
///
/// Returns a [`FrontendError`] if the source fails to lex or parse.
pub fn build_js_source(source: &str, file: FileId) -> Result<PropagationGraph, FrontendError> {
    let program = parse(source)?;
    Ok(build_ir(&lower_js_program(&program), file))
}

/// Like [`build_js_source`] but recovers from statement-level parse
/// errors: malformed statements are skipped and reported, the rest of the
/// file is analyzed.
pub fn build_js_source_lenient(
    source: &str,
    file: FileId,
) -> (PropagationGraph, Vec<FrontendError>) {
    let (program, errors) = parse_lenient(source);
    (build_ir(&lower_js_program(&program), file), errors)
}

/// Like [`build_js_source`], with every phase held to a resource
/// [`Budget`].
///
/// # Errors
///
/// Returns [`BuildError::Frontend`] on a lex/parse failure and
/// [`BuildError::OverBudget`] when a budget limit trips.
pub fn build_js_source_budgeted(
    source: &str,
    file: FileId,
    budget: &Budget,
) -> Result<PropagationGraph, BuildError> {
    build_js_source_timed(source, file, Some(budget)).map(|(g, _)| g)
}

/// Like [`build_js_source_lenient`], under a resource [`Budget`].
///
/// # Errors
///
/// Returns [`BudgetExceeded`] when a budget limit trips.
pub fn build_js_source_lenient_budgeted(
    source: &str,
    file: FileId,
    budget: &Budget,
) -> Result<(PropagationGraph, Vec<FrontendError>), BudgetExceeded> {
    build_js_source_lenient_timed(source, file, Some(budget)).map(|(g, e, _)| (g, e))
}

/// Strict timed build: the budget-optional superset of [`build_js_source`]
/// and [`build_js_source_budgeted`], reporting the parse/build phase split.
///
/// # Errors
///
/// Returns [`BuildError::Frontend`] on a lex/parse failure and
/// [`BuildError::OverBudget`] when a budget limit trips (never with
/// `budget: None`).
pub fn build_js_source_timed(
    source: &str,
    file: FileId,
    budget: Option<&Budget>,
) -> Result<(PropagationGraph, BuildTimings), BuildError> {
    if let Some(b) = budget {
        check_source_size(source, b)?;
    }
    let parse_started = Instant::now();
    let program = parse(source)?;
    let parse_time = parse_started.elapsed();
    let build_started = Instant::now();
    let ir = match budget {
        Some(b) => lower_js_program_budgeted(&program, b)?,
        None => lower_js_program(&program),
    };
    let graph = build_ir(&ir, file);
    let timings = BuildTimings { parse: parse_time, build: build_started.elapsed() };
    Ok((graph, timings))
}

/// Lenient timed build: the budget-optional superset of
/// [`build_js_source_lenient`] and [`build_js_source_lenient_budgeted`],
/// reporting the parse/build phase split.
///
/// # Errors
///
/// Returns [`BudgetExceeded`] when a budget limit trips (never with
/// `budget: None`).
pub fn build_js_source_lenient_timed(
    source: &str,
    file: FileId,
    budget: Option<&Budget>,
) -> Result<(PropagationGraph, Vec<FrontendError>, BuildTimings), BudgetExceeded> {
    if let Some(b) = budget {
        check_source_size(source, b)?;
    }
    let parse_started = Instant::now();
    let (program, errors) = parse_lenient(source);
    let parse_time = parse_started.elapsed();
    let build_started = Instant::now();
    let ir = match budget {
        Some(b) => lower_js_program_budgeted(&program, b)?,
        None => lower_js_program(&program),
    };
    let graph = build_ir(&ir, file);
    let timings = BuildTimings { parse: parse_time, build: build_started.elapsed() };
    Ok((graph, errors, timings))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_flow_reaches_sink() {
        let src = "import { query } from './db';\n\
                   function route(req) {\n\
                     const name = req.body.name;\n\
                     query(name);\n\
                     return name;\n\
                   }\n";
        let g = build_js_source(src, FileId(3)).expect("builds");
        let param = g
            .events()
            .find(|(_, e)| e.has_rep("route(param req)"))
            .map(|(id, _)| id)
            .expect("param event");
        let sink = g
            .events()
            .find(|(_, e)| e.has_rep("db.query()"))
            .map(|(id, _)| id)
            .expect("sink event");
        // param → req.body → req.body.name → query(name)
        let mut frontier = vec![param];
        let mut reached = false;
        let mut seen = std::collections::HashSet::new();
        while let Some(ev) = frontier.pop() {
            if ev == sink {
                reached = true;
                break;
            }
            for &s in g.successors(ev) {
                if seen.insert(s) {
                    frontier.push(s);
                }
            }
        }
        assert!(reached, "taint must flow from the parameter to the sink call");
        // Events carry the stamped file id.
        assert!(g.events().all(|(_, e)| e.file == FileId(3)));
    }

    #[test]
    fn lenient_build_reports_errors_and_keeps_going() {
        let src = "const a = f(;\nconst fs = require('fs');\nfs.readFile(p);\n";
        let (g, errors) = build_js_source_lenient(src, FileId(0));
        assert_eq!(errors.len(), 1);
        assert!(g.events().any(|(_, e)| e.has_rep("fs.readFile()")));
    }

    #[test]
    fn budgeted_build_trips_on_source_size() {
        let tight = Budget { max_source_bytes: 4, ..Budget::unlimited() };
        let err = build_js_source_budgeted("const a = b;", FileId(0), &tight).unwrap_err();
        assert!(matches!(
            err,
            BuildError::OverBudget(BudgetExceeded::SourceBytes { .. })
        ));
    }
}
