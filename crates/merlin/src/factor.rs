//! A factor graph over binary variables with sum-product belief propagation
//! and Gibbs sampling (§6.3 of the paper).
//!
//! Merlin expresses its information-flow constraints as factors scoring
//! joint assignments (eq. 12) and computes per-variable marginals
//! (eq. 13). The paper's authors used Infer.NET; this is a from-scratch
//! implementation of the two standard inference algorithms the paper names:
//! loopy belief propagation (the sum-product algorithm) and Gibbs sampling.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Index of a variable in a [`FactorGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarIdx(pub u32);

impl VarIdx {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// A factor: a scoring table over the joint assignment of its variables.
///
/// `table[bits]` is the score for the assignment whose `i`-th variable value
/// is bit `i` of `bits` (variable order as in `vars`).
#[derive(Debug, Clone)]
pub struct Factor {
    /// The variables this factor touches (arity ≤ 16).
    pub vars: Vec<VarIdx>,
    /// Score per joint assignment; length `2^arity`.
    pub table: Vec<f64>,
}

impl Factor {
    /// Creates a factor, validating the table size.
    ///
    /// # Panics
    ///
    /// Panics if `table.len() != 2^vars.len()` or arity exceeds 16.
    pub fn new(vars: Vec<VarIdx>, table: Vec<f64>) -> Self {
        assert!(vars.len() <= 16, "factor arity too large");
        assert_eq!(table.len(), 1 << vars.len(), "table size mismatch");
        Factor { vars, table }
    }

    /// A soft-implication factor: score `theta` when `predicate` holds for
    /// the assignment, `1 − theta` otherwise.
    pub fn soft<P: Fn(&[bool]) -> bool>(vars: Vec<VarIdx>, theta: f64, predicate: P) -> Self {
        let n = vars.len();
        let mut table = Vec::with_capacity(1 << n);
        let mut assignment = vec![false; n];
        for bits in 0..(1usize << n) {
            for (i, a) in assignment.iter_mut().enumerate() {
                *a = bits & (1 << i) != 0;
            }
            table.push(if predicate(&assignment) { theta } else { 1.0 - theta });
        }
        Factor::new(vars, table)
    }

    fn score(&self, bits: usize) -> f64 {
        self.table[bits]
    }
}

/// A factor graph over binary variables.
#[derive(Debug, Clone, Default)]
pub struct FactorGraph {
    /// Prior probability of each variable being 1; `None` means pinned.
    priors: Vec<f64>,
    /// Pinned values (hard evidence).
    pinned: Vec<Option<bool>>,
    factors: Vec<Factor>,
    /// Factor indices per variable.
    var_factors: Vec<Vec<u32>>,
}

impl FactorGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        FactorGraph::default()
    }

    /// Adds a variable with prior `p(x = 1) = prior`, returning its index.
    pub fn add_var(&mut self, prior: f64) -> VarIdx {
        let v = VarIdx(self.priors.len() as u32);
        self.priors.push(prior.clamp(1e-6, 1.0 - 1e-6));
        self.pinned.push(None);
        self.var_factors.push(Vec::new());
        v
    }

    /// Pins a variable to a known value (hard evidence from the seed spec).
    pub fn pin(&mut self, v: VarIdx, value: bool) {
        self.pinned[v.index()] = Some(value);
    }

    /// Adds a factor.
    pub fn add_factor(&mut self, f: Factor) {
        let idx = self.factors.len() as u32;
        for v in &f.vars {
            self.var_factors[v.index()].push(idx);
        }
        self.factors.push(f);
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.priors.len()
    }

    /// Number of factors.
    pub fn factor_count(&self) -> usize {
        self.factors.len()
    }

    /// Runs loopy belief propagation and returns `p(x = 1)` per variable.
    ///
    /// Messages are damped by `damping` and iteration stops after
    /// `max_iters` sweeps or when the largest message change drops below
    /// `tol`.
    pub fn belief_propagation(&self, max_iters: usize, damping: f64, tol: f64) -> Vec<f64> {
        let nf = self.factors.len();
        // Messages as p(x=1) parameterization, factor→var and var→factor.
        let mut msg_fv: Vec<Vec<f64>> = self.factors.iter().map(|f| vec![0.5; f.vars.len()]).collect();
        let mut msg_vf: Vec<Vec<f64>> = self.factors.iter().map(|f| vec![0.5; f.vars.len()]).collect();

        for _ in 0..max_iters {
            let mut max_delta: f64 = 0.0;
            // var → factor messages.
            for (fi, f) in self.factors.iter().enumerate() {
                for (slot, v) in f.vars.iter().enumerate() {
                    let new = self.var_to_factor(*v, fi as u32, &msg_fv);
                    let old = msg_vf[fi][slot];
                    let damped = damping * old + (1.0 - damping) * new;
                    max_delta = max_delta.max((damped - old).abs());
                    msg_vf[fi][slot] = damped;
                }
            }
            // factor → var messages.
            for fi in 0..nf {
                let f = &self.factors[fi];
                for (slot, m) in msg_fv[fi].iter_mut().enumerate().take(f.vars.len()) {
                    let new = self.factor_to_var(f, slot, &msg_vf[fi]);
                    let old = *m;
                    let damped = damping * old + (1.0 - damping) * new;
                    max_delta = max_delta.max((damped - old).abs());
                    *m = damped;
                }
            }
            if max_delta < tol {
                break;
            }
        }

        // Beliefs.
        (0..self.var_count())
            .map(|vi| {
                let v = VarIdx(vi as u32);
                if let Some(val) = self.pinned[vi] {
                    return if val { 1.0 } else { 0.0 };
                }
                let mut p1 = self.priors[vi];
                let mut p0 = 1.0 - self.priors[vi];
                for &fi in &self.var_factors[vi] {
                    let f = &self.factors[fi as usize];
                    let slot = f.vars.iter().position(|x| *x == v)
                .expect("var_factors only indexes factors that contain the variable");
                    let m = msg_fv[fi as usize][slot];
                    p1 *= m;
                    p0 *= 1.0 - m;
                    let z = p0 + p1;
                    if z > 0.0 {
                        p0 /= z;
                        p1 /= z;
                    }
                }
                p1
            })
            .collect()
    }

    /// Message from variable `v` to factor `fi`: product of priors and all
    /// other incoming factor messages.
    fn var_to_factor(&self, v: VarIdx, fi: u32, msg_fv: &[Vec<f64>]) -> f64 {
        if let Some(val) = self.pinned[v.index()] {
            return if val { 1.0 - 1e-9 } else { 1e-9 };
        }
        let mut p1 = self.priors[v.index()];
        let mut p0 = 1.0 - p1;
        for &other in &self.var_factors[v.index()] {
            if other == fi {
                continue;
            }
            let f = &self.factors[other as usize];
            let slot = f.vars.iter().position(|x| *x == v)
                .expect("var_factors only indexes factors that contain the variable");
            let m = msg_fv[other as usize][slot];
            p1 *= m;
            p0 *= 1.0 - m;
            let z = p0 + p1;
            if z > 1e-300 {
                p0 /= z;
                p1 /= z;
            } else {
                p0 = 0.5;
                p1 = 0.5;
            }
        }
        p1 / (p0 + p1)
    }

    /// Message from a factor to its `slot`-th variable: marginalize the
    /// factor table against the other variables' messages.
    fn factor_to_var(&self, f: &Factor, slot: usize, msgs: &[f64]) -> f64 {
        let n = f.vars.len();
        let mut p = [0.0f64; 2];
        for bits in 0..(1usize << n) {
            let mut w = f.score(bits);
            for (i, _) in f.vars.iter().enumerate() {
                if i == slot {
                    continue;
                }
                let m = msgs[i];
                w *= if bits & (1 << i) != 0 { m } else { 1.0 - m };
            }
            let val = (bits >> slot) & 1;
            p[val] += w;
        }
        let z = p[0] + p[1];
        if z > 1e-300 {
            p[1] / z
        } else {
            0.5
        }
    }

    /// Max-product (MAP-oriented) belief propagation: like
    /// [`FactorGraph::belief_propagation`] but factors *maximize* over the
    /// hidden assignments instead of summing, approximating the most
    /// probable joint assignment's per-variable max-marginals.
    pub fn max_product(&self, max_iters: usize, damping: f64, tol: f64) -> Vec<f64> {
        // Reuse the sum-product message plumbing with max-marginalization.
        let nf = self.factors.len();
        let mut msg_fv: Vec<Vec<f64>> =
            self.factors.iter().map(|f| vec![0.5; f.vars.len()]).collect();
        let mut msg_vf: Vec<Vec<f64>> =
            self.factors.iter().map(|f| vec![0.5; f.vars.len()]).collect();
        for _ in 0..max_iters {
            let mut max_delta: f64 = 0.0;
            for (fi, f) in self.factors.iter().enumerate() {
                for (slot, v) in f.vars.iter().enumerate() {
                    let new = self.var_to_factor(*v, fi as u32, &msg_fv);
                    let old = msg_vf[fi][slot];
                    let damped = damping * old + (1.0 - damping) * new;
                    max_delta = max_delta.max((damped - old).abs());
                    msg_vf[fi][slot] = damped;
                }
            }
            for fi in 0..nf {
                let f = &self.factors[fi];
                for (slot, m) in msg_fv[fi].iter_mut().enumerate().take(f.vars.len()) {
                    let new = self.factor_to_var_max(f, slot, &msg_vf[fi]);
                    let old = *m;
                    let damped = damping * old + (1.0 - damping) * new;
                    max_delta = max_delta.max((damped - old).abs());
                    *m = damped;
                }
            }
            if max_delta < tol {
                break;
            }
        }
        (0..self.var_count())
            .map(|vi| {
                let v = VarIdx(vi as u32);
                if let Some(val) = self.pinned[vi] {
                    return if val { 1.0 } else { 0.0 };
                }
                let mut p1 = self.priors[vi];
                let mut p0 = 1.0 - self.priors[vi];
                for &fi in &self.var_factors[vi] {
                    let f = &self.factors[fi as usize];
                    let slot = f.vars.iter().position(|x| *x == v)
                .expect("var_factors only indexes factors that contain the variable");
                    let m = msg_fv[fi as usize][slot];
                    p1 *= m;
                    p0 *= 1.0 - m;
                    let z = p0 + p1;
                    if z > 0.0 {
                        p0 /= z;
                        p1 /= z;
                    }
                }
                p1
            })
            .collect()
    }

    /// Max-marginalization of a factor against the other variables'
    /// messages: take the best assignment instead of summing.
    fn factor_to_var_max(&self, f: &Factor, slot: usize, msgs: &[f64]) -> f64 {
        let n = f.vars.len();
        let mut p = [0.0f64; 2];
        for bits in 0..(1usize << n) {
            let mut w = f.score(bits);
            for (i, _) in f.vars.iter().enumerate() {
                if i == slot {
                    continue;
                }
                let m = msgs[i];
                w *= if bits & (1 << i) != 0 { m } else { 1.0 - m };
            }
            let val = (bits >> slot) & 1;
            p[val] = p[val].max(w);
        }
        let z = p[0] + p[1];
        if z > 1e-300 {
            p[1] / z
        } else {
            0.5
        }
    }

    /// Gibbs sampling: returns the empirical `p(x = 1)` per variable after
    /// `burn_in + samples` full sweeps.
    pub fn gibbs(&self, burn_in: usize, samples: usize, rng_seed: u64) -> Vec<f64> {
        let n = self.var_count();
        let mut rng = SmallRng::seed_from_u64(rng_seed);
        let mut state: Vec<bool> = (0..n)
            .map(|i| match self.pinned[i] {
                Some(v) => v,
                None => rng.gen_bool(self.priors[i]),
            })
            .collect();
        let mut counts = vec![0usize; n];
        for sweep in 0..(burn_in + samples) {
            for vi in 0..n {
                if self.pinned[vi].is_some() {
                    continue;
                }
                let mut w1 = self.priors[vi];
                let mut w0 = 1.0 - self.priors[vi];
                for &fi in &self.var_factors[vi] {
                    let f = &self.factors[fi as usize];
                    let mut bits = 0usize;
                    let mut slot = 0usize;
                    for (i, v) in f.vars.iter().enumerate() {
                        if v.index() == vi {
                            slot = i;
                        } else if state[v.index()] {
                            bits |= 1 << i;
                        }
                    }
                    w0 *= f.score(bits);
                    w1 *= f.score(bits | (1 << slot));
                }
                let p1 = if w0 + w1 > 0.0 { w1 / (w0 + w1) } else { 0.5 };
                state[vi] = rng.gen_bool(p1.clamp(0.0, 1.0));
            }
            if sweep >= burn_in {
                for (vi, &s) in state.iter().enumerate() {
                    if s {
                        counts[vi] += 1;
                    }
                }
            }
        }
        counts
            .iter()
            .enumerate()
            .map(|(vi, &c)| match self.pinned[vi] {
                Some(true) => 1.0,
                Some(false) => 0.0,
                None => c as f64 / samples.max(1) as f64,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soft_factor_table() {
        let f = Factor::soft(vec![VarIdx(0), VarIdx(1)], 0.9, |a| !(a[0] && a[1]));
        // Assignment (1,1) violates the predicate → score 0.1.
        assert!((f.table[0b11] - 0.1).abs() < 1e-12);
        assert!((f.table[0b00] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn single_variable_prior_passthrough() {
        let mut g = FactorGraph::new();
        let v = g.add_var(0.8);
        let beliefs = g.belief_propagation(50, 0.0, 1e-9);
        assert!((beliefs[v.index()] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn pinned_variables_are_hard() {
        let mut g = FactorGraph::new();
        let a = g.add_var(0.5);
        let b = g.add_var(0.5);
        g.pin(a, true);
        // Factor: prefer a == b.
        g.add_factor(Factor::soft(vec![a, b], 0.9, |x| x[0] == x[1]));
        let beliefs = g.belief_propagation(100, 0.0, 1e-9);
        assert_eq!(beliefs[a.index()], 1.0);
        assert!(beliefs[b.index()] > 0.8, "b = {}", beliefs[b.index()]);
    }

    #[test]
    fn implication_chain_propagates() {
        // a=1 pinned; factors: a → b, b → c (soft implications).
        let mut g = FactorGraph::new();
        let a = g.add_var(0.5);
        let b = g.add_var(0.5);
        let c = g.add_var(0.5);
        g.pin(a, true);
        g.add_factor(Factor::soft(vec![a, b], 0.95, |x| !x[0] || x[1]));
        g.add_factor(Factor::soft(vec![b, c], 0.95, |x| !x[0] || x[1]));
        let beliefs = g.belief_propagation(200, 0.1, 1e-9);
        assert!(beliefs[b.index()] > 0.7);
        assert!(beliefs[c.index()] > 0.6);
        assert!(beliefs[b.index()] >= beliefs[c.index()] - 1e-6);
    }

    #[test]
    fn negative_constraint_pushes_down() {
        let mut g = FactorGraph::new();
        let a = g.add_var(0.5);
        let b = g.add_var(0.5);
        g.pin(a, true);
        // not both.
        g.add_factor(Factor::soft(vec![a, b], 0.9, |x| !(x[0] && x[1])));
        let beliefs = g.belief_propagation(100, 0.0, 1e-9);
        assert!(beliefs[b.index()] < 0.2, "b = {}", beliefs[b.index()]);
    }

    #[test]
    fn gibbs_agrees_with_bp_on_tree() {
        let mut g = FactorGraph::new();
        let a = g.add_var(0.5);
        let b = g.add_var(0.5);
        g.pin(a, true);
        g.add_factor(Factor::soft(vec![a, b], 0.9, |x| x[0] == x[1]));
        let bp = g.belief_propagation(100, 0.0, 1e-9);
        let gibbs = g.gibbs(200, 4000, 42);
        assert!((bp[b.index()] - gibbs[b.index()]).abs() < 0.05);
    }

    #[test]
    fn max_product_agrees_on_tree() {
        let mut g = FactorGraph::new();
        let a = g.add_var(0.5);
        let b = g.add_var(0.5);
        g.pin(a, true);
        g.add_factor(Factor::soft(vec![a, b], 0.9, |x| x[0] == x[1]));
        let sum = g.belief_propagation(100, 0.0, 1e-9);
        let max = g.max_product(100, 0.0, 1e-9);
        // On a tree with a single pairwise factor both push b up.
        assert!(max[b.index()] > 0.7, "max-product b = {}", max[b.index()]);
        assert!((sum[b.index()] - max[b.index()]).abs() < 0.2);
    }

    #[test]
    fn triple_factor_marginalization() {
        // Merlin 6a-style: if a and c then b.
        let mut g = FactorGraph::new();
        let a = g.add_var(0.5);
        let b = g.add_var(0.3);
        let c = g.add_var(0.5);
        g.pin(a, true);
        g.pin(c, true);
        g.add_factor(Factor::soft(vec![a, b, c], 0.95, |x| !(x[0] && x[2]) || x[1]));
        let beliefs = g.belief_propagation(100, 0.0, 1e-9);
        assert!(beliefs[b.index()] > 0.8, "b = {}", beliefs[b.index()]);
    }

    #[test]
    #[should_panic(expected = "table size mismatch")]
    fn bad_table_panics() {
        let _ = Factor::new(vec![VarIdx(0)], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn counts() {
        let mut g = FactorGraph::new();
        let a = g.add_var(0.5);
        let b = g.add_var(0.5);
        g.add_factor(Factor::soft(vec![a, b], 0.9, |_| true));
        assert_eq!(g.var_count(), 2);
        assert_eq!(g.factor_count(), 1);
    }
}
