//! The Merlin model adapted to dynamically-typed code (§6).
//!
//! Differences from Seldon, as the paper lays out: (i) the Fig. 6
//! constraints restrict *specific* nodes instead of asserting existence,
//! (ii) without static types every call is a candidate for every role,
//! (iii) inference is probabilistic (factor graphs) instead of linear
//! optimization, and (iv) the propagation graph may be *collapsed* (vertex
//! contraction of same-representation events, §6.4) or uncollapsed.

use crate::factor::{Factor, FactorGraph, VarIdx};
use seldon_intern::Symbol;
use seldon_propgraph::{EventId, EventKind, PropagationGraph};
use seldon_specs::{CompiledSpec, Role, TaintSpec};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Configuration of a Merlin run.
#[derive(Debug, Clone)]
pub struct MerlinOptions {
    /// Use the collapsed (vertex-contracted) graph (§6.4).
    pub collapsed: bool,
    /// Soft-constraint confidence θ for the Fig. 6 factors.
    pub theta: f64,
    /// Prior for source and sink candidates (the paper uses 50%).
    pub endpoint_prior: f64,
    /// Inference algorithm.
    pub inference: Inference,
    /// BP iterations / Gibbs sweeps.
    pub max_iters: usize,
    /// BFS cap per anchor node, bounding factor blowup.
    pub max_reach: usize,
    /// Maximum triple factors per sanitizer anchor.
    pub max_triples: usize,
}

impl Default for MerlinOptions {
    fn default() -> Self {
        MerlinOptions {
            collapsed: true,
            theta: 0.9,
            endpoint_prior: 0.5,
            inference: Inference::BeliefPropagation,
            max_iters: 100,
            max_reach: 256,
            max_triples: 2048,
        }
    }
}

/// Which marginal-inference algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inference {
    /// Loopy sum-product (the Infer.NET default family the paper used).
    BeliefPropagation,
    /// Loopy max-product (MAP-oriented) message passing.
    MaxProduct,
    /// Gibbs sampling (the paper's fallback when EP timed out).
    Gibbs {
        /// Burn-in sweeps discarded before collecting samples.
        burn_in: usize,
        /// RNG seed for reproducibility.
        seed: u64,
    },
}

/// The result of a Merlin run.
#[derive(Debug, Clone)]
pub struct MerlinResult {
    /// Marginal `p(role)` per interned representation (max over graph nodes
    /// sharing the representation).
    pub marginals: HashMap<(Symbol, Role), f64>,
    /// Candidate counts (sources, sanitizers, sinks), as in Tab. 2.
    pub candidates: (usize, usize, usize),
    /// Number of factors in the graphical model, as in Tab. 2.
    pub factors: usize,
    /// Wall-clock inference time.
    pub inference_time: Duration,
}

impl MerlinResult {
    /// Predictions above `threshold`, excluding seeded entries, sorted by
    /// descending probability.
    pub fn predictions(&self, threshold: f64, seed: &TaintSpec) -> Vec<(String, Role, f64)> {
        let mut v: Vec<(String, Role, f64)> = self
            .marginals
            .iter()
            .filter(|((rep, role), &p)| p >= threshold && !seed.has_role(rep.as_str(), *role))
            .map(|((rep, role), &p)| (rep.as_str().to_string(), *role, p))
            .collect();
        v.sort_by(|a, b| b.2.total_cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// The top `n` predictions per role, excluding seeded entries.
    pub fn top_n(&self, n: usize, role: Role, seed: &TaintSpec) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> = self
            .marginals
            .iter()
            .filter(|((rep, r), _)| *r == role && !seed.has_role(rep.as_str(), role))
            .map(|((rep, _), &p)| (rep.as_str().to_string(), p))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// The marginal for `(rep text, role)`, if the representation occurred.
    pub fn marginal(&self, rep: &str, role: Role) -> Option<f64> {
        let sym = seldon_intern::lookup(rep)?;
        self.marginals.get(&(sym, role)).copied()
    }
}

/// Runs the adapted Merlin method on a propagation graph.
pub fn run_merlin(graph: &PropagationGraph, seed: &TaintSpec, opts: &MerlinOptions) -> MerlinResult {
    let working;
    let g = if opts.collapsed {
        let (c, _) = graph.contract();
        working = c;
        &working
    } else {
        graph
    };

    let mut fg = FactorGraph::new();
    let mut vars: HashMap<(EventId, Role), VarIdx> = HashMap::new();
    let ids: Vec<EventId> = g.events().map(|(id, _)| id).collect();

    // Sanitizer prior: fraction of source→sink paths among paths through the
    // node (the paper's "which fraction of paths that go through it start
    // from a source and end in a sink"); approximated with candidate counts
    // over the node's predecessors/successors.
    let mut san_prior: HashMap<EventId, f64> = HashMap::new();
    for &id in &ids {
        if g.event(id).kind != EventKind::Call {
            continue;
        }
        let mut back = g.reaching(id);
        back.truncate(opts.max_reach);
        let mut fwd = g.reachable_from(id);
        fwd.truncate(opts.max_reach);
        let total = (back.len() * fwd.len()).max(1);
        let src_like = back
            .iter()
            .filter(|&&u| g.event(u).candidates.contains(Role::Source))
            .count();
        let snk_like = fwd
            .iter()
            .filter(|&&t| {
                g.event(t).kind == EventKind::Call
            })
            .count();
        let p = (src_like * snk_like) as f64 / total as f64;
        san_prior.insert(id, p.clamp(0.05, 0.95));
    }

    // Variables per candidate (event, role). Without static types every call
    // is a candidate for every role (§6.2); reads/params are source-only.
    for &id in &ids {
        let ev = g.event(id);
        for role in ev.candidates.iter() {
            let prior = match role {
                Role::Sanitizer => san_prior.get(&id).copied().unwrap_or(0.1),
                _ => opts.endpoint_prior,
            };
            let v = fg.add_var(prior);
            vars.insert((id, role), v);
        }
    }

    // Hard priors from the seed spec: match any backoff representation.
    // Glob/entry resolution is memoized per symbol across the whole graph.
    let compiled = CompiledSpec::new(seed);
    for &id in &ids {
        let ev = g.event(id);
        for &rep in &ev.reps {
            let roles = compiled.roles(rep);
            if roles.is_empty() {
                continue;
            }
            for role in Role::ALL {
                if let Some(&v) = vars.get(&(id, role)) {
                    fg.pin(v, roles.contains(role));
                }
            }
            break;
        }
    }

    // Fig. 6 factors.
    let theta = opts.theta;
    for &b in &ids {
        if g.event(b).kind != EventKind::Call {
            continue;
        }
        let Some(&b_san) = vars.get(&(b, Role::Sanitizer)) else { continue };
        let mut sources = g.reaching(b);
        sources.truncate(opts.max_reach);
        let mut sinks = g.reachable_from(b);
        sinks.truncate(opts.max_reach);

        // Fig. 6a: source a → b → sink c ⇒ b is a sanitizer.
        let mut triples = 0usize;
        'outer: for &a in &sources {
            let Some(&a_src) = vars.get(&(a, Role::Source)) else { continue };
            for &c in &sinks {
                let Some(&c_snk) = vars.get(&(c, Role::Sink)) else { continue };
                fg.add_factor(Factor::soft(vec![a_src, b_san, c_snk], theta, |x| {
                    !(x[0] && x[2]) || x[1]
                }));
                triples += 1;
                if triples >= opts.max_triples {
                    break 'outer;
                }
            }
        }

        // Fig. 6b: flow from sanitizer b to c ⇒ c is not a sanitizer.
        for &c in g.successors(b) {
            if let Some(&c_san) = vars.get(&(c, Role::Sanitizer)) {
                fg.add_factor(Factor::soft(vec![b_san, c_san], theta, |x| !(x[0] && x[1])));
            }
        }
    }
    for &a in &ids {
        // Fig. 6c: flow from source a to b ⇒ b is not a source.
        if let Some(&a_src) = vars.get(&(a, Role::Source)) {
            for &b in g.successors(a) {
                if let Some(&b_src) = vars.get(&(b, Role::Source)) {
                    fg.add_factor(Factor::soft(vec![a_src, b_src], theta, |x| {
                        !(x[0] && x[1])
                    }));
                }
            }
        }
        // Fig. 6d: flow from a into sink b ⇒ a is not a sink.
        if let Some(&a_snk) = vars.get(&(a, Role::Sink)) {
            for &b in g.successors(a) {
                if let Some(&b_snk) = vars.get(&(b, Role::Sink)) {
                    fg.add_factor(Factor::soft(vec![a_snk, b_snk], theta, |x| {
                        !(x[1] && x[0])
                    }));
                }
            }
        }
    }

    let started = Instant::now();
    let beliefs = match opts.inference {
        Inference::BeliefPropagation => fg.belief_propagation(opts.max_iters, 0.3, 1e-6),
        Inference::MaxProduct => fg.max_product(opts.max_iters, 0.3, 1e-6),
        Inference::Gibbs { burn_in, seed } => fg.gibbs(burn_in, opts.max_iters, seed),
    };
    let inference_time = started.elapsed();

    // Aggregate marginals per representation (max over nodes).
    let mut marginals: HashMap<(Symbol, Role), f64> = HashMap::new();
    let mut n_src = 0;
    let mut n_san = 0;
    let mut n_snk = 0;
    for (&(id, role), &v) in &vars {
        match role {
            Role::Source => n_src += 1,
            Role::Sanitizer => n_san += 1,
            Role::Sink => n_snk += 1,
        }
        let rep = g.event(id).rep_sym();
        let p = beliefs[v.0 as usize];
        let entry = marginals.entry((rep, role)).or_insert(0.0);
        *entry = entry.max(p);
    }

    MerlinResult {
        marginals,
        candidates: (n_src, n_san, n_snk),
        factors: fg.factor_count(),
        inference_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldon_propgraph::{build_source, FileId};

    fn sample_graph() -> PropagationGraph {
        build_source(
            "
from flask import request
from m import clean
import os
x = request.args.get('p')
y = clean(x)
os.system(y)
",
            FileId(0),
        )
        .unwrap()
    }

    fn seed() -> TaintSpec {
        TaintSpec::parse("o: flask.request.args.get()\ni: os.system()\n").unwrap()
    }

    #[test]
    fn sanitizer_between_seeded_endpoints_scores_high() {
        let g = sample_graph();
        let res = run_merlin(&g, &seed(), &MerlinOptions::default());
        let p = res.marginal("m.clean()", Role::Sanitizer);
        assert!(p.is_some());
        assert!(p.unwrap() > 0.5, "clean() san marginal = {:?}", p);
        assert!(res.factors > 0);
    }

    #[test]
    fn collapsed_has_no_more_nodes_than_uncollapsed() {
        let g = sample_graph();
        let col = run_merlin(&g, &seed(), &MerlinOptions { collapsed: true, ..Default::default() });
        let unc = run_merlin(&g, &seed(), &MerlinOptions { collapsed: false, ..Default::default() });
        assert!(col.candidates.0 <= unc.candidates.0);
    }

    #[test]
    fn gibbs_runs_and_agrees_roughly() {
        let g = sample_graph();
        let bp = run_merlin(&g, &seed(), &MerlinOptions::default());
        let gibbs = run_merlin(
            &g,
            &seed(),
            &MerlinOptions {
                inference: Inference::Gibbs { burn_in: 100, seed: 7 },
                max_iters: 1000,
                ..Default::default()
            },
        );
        let key = (seldon_intern::intern("m.clean()"), Role::Sanitizer);
        let d = (bp.marginals[&key] - gibbs.marginals[&key]).abs();
        assert!(d < 0.35, "bp vs gibbs differ too much: {d}");
    }

    #[test]
    fn predictions_exclude_seed() {
        let g = sample_graph();
        let s = seed();
        let res = run_merlin(&g, &s, &MerlinOptions::default());
        for (rep, role, _) in res.predictions(0.5, &s) {
            assert!(!s.has_role(&rep, role), "{rep} is seeded");
        }
    }

    #[test]
    fn top_n_sorted_descending() {
        let g = sample_graph();
        let s = seed();
        let res = run_merlin(&g, &s, &MerlinOptions::default());
        let top = res.top_n(5, Role::Sanitizer, &s);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn max_product_runs_and_ranks_sanitizer() {
        let g = sample_graph();
        let res = run_merlin(
            &g,
            &seed(),
            &MerlinOptions { inference: Inference::MaxProduct, ..Default::default() },
        );
        let p = res.marginal("m.clean()", Role::Sanitizer);
        assert!(p.is_some_and(|p| p > 0.5), "max-product clean() = {p:?}");
    }

    #[test]
    fn empty_graph_runs() {
        let g = PropagationGraph::new();
        let res = run_merlin(&g, &TaintSpec::new(), &MerlinOptions::default());
        assert_eq!(res.factors, 0);
        assert!(res.marginals.is_empty());
    }
}
