//! # seldon-merlin
//!
//! The Merlin baseline (Livshits et al. 2009) adapted to dynamically-typed
//! code as the paper describes in §6: a factor-graph formulation of the
//! Fig. 6 information-flow constraints with candidate priors, solved with
//! loopy belief propagation or Gibbs sampling, over collapsed or
//! uncollapsed propagation graphs.
//!
//! ## Example
//!
//! ```
//! use seldon_merlin::{run_merlin, MerlinOptions};
//! use seldon_propgraph::{build_source, FileId};
//! use seldon_specs::TaintSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = build_source("from m import f\nx = f()\n", FileId(0))?;
//! let result = run_merlin(&graph, &TaintSpec::new(), &MerlinOptions::default());
//! assert!(result.factors < 10);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod factor;
pub mod model;

pub use factor::{Factor, FactorGraph, VarIdx};
pub use model::{run_merlin, Inference, MerlinOptions, MerlinResult};
