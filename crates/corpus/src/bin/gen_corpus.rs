//! Writes a synthetic corpus to disk as real `.py` (or, with `--lang js`,
//! `.js`) trees, so the `seldon` CLI (and anything else) can run against
//! it like any checkout.
//!
//! ```text
//! gen-corpus <out_dir> [--projects N] [--seed S] [--fault-rate R] [--lang py|js]
//! ```
//!
//! Alongside the project directories it writes `seed_spec.txt` (the corpus
//! seed in App. B format) and `ground_truth.txt` (one line per known flow)
//! so downstream evaluation does not need this crate.

use seldon_corpus::{generate_corpus, CorpusOptions, FlowKind, Lang, Universe};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir: Option<PathBuf> = None;
    let mut opts = CorpusOptions { projects: 50, ..Default::default() };
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--projects" => {
                opts.projects = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--projects needs a number")?;
            }
            "--seed" => {
                opts.rng_seed =
                    it.next().and_then(|v| v.parse().ok()).ok_or("--seed needs a number")?;
            }
            "--fault-rate" => {
                opts.fault_rate = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|r| (0.0..=1.0).contains(r))
                    .ok_or("--fault-rate needs a number in [0, 1]")?;
            }
            "--lang" => {
                opts.lang = match it.next().as_deref() {
                    Some("py") => Lang::Py,
                    Some("js") => Lang::Js,
                    _ => return Err("--lang needs `py` or `js`".to_string()),
                };
            }
            other if !other.starts_with('-') => out_dir = Some(PathBuf::from(other)),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let out_dir = out_dir.ok_or(
        "usage: gen-corpus <out_dir> [--projects N] [--seed S] [--fault-rate R] [--lang py|js]",
    )?;

    let universe = Universe::new();
    let corpus = generate_corpus(&universe, &opts);
    let mut files_written = 0usize;
    for project in &corpus.projects {
        for file in &project.files {
            let path = out_dir.join(&project.name).join(&file.path);
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("mkdir {}: {e}", parent.display()))?;
            }
            std::fs::write(&path, &file.content)
                .map_err(|e| format!("write {}: {e}", path.display()))?;
            files_written += 1;
        }
    }
    let seed_spec = match opts.lang {
        Lang::Py => universe.seed_spec(),
        Lang::Js => universe.seed_spec_js(),
    };
    std::fs::write(out_dir.join("seed_spec.txt"), seed_spec.to_text())
        .map_err(|e| e.to_string())?;

    let mut truth = String::new();
    for f in &corpus.flows {
        let kind = match f.kind {
            FlowKind::Sanitized => "sanitized",
            FlowKind::Vulnerable { exploitable: true } => "vulnerable",
            FlowKind::Vulnerable { exploitable: false } => "vulnerable-unexploitable",
            FlowKind::WrongParam => "wrong-param",
            FlowKind::SafeLiteral => "safe-literal",
            FlowKind::Noise => "noise",
        };
        truth.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\n",
            corpus.projects[f.project].name,
            f.file,
            f.handler,
            kind,
            f.source.unwrap_or("-"),
            f.sink.unwrap_or("-"),
        ));
    }
    std::fs::write(out_dir.join("ground_truth.txt"), truth).map_err(|e| e.to_string())?;

    if !corpus.faults.is_empty() {
        let mut manifest = String::new();
        for f in &corpus.faults {
            manifest.push_str(&format!(
                "{}\t{}\t{:?}\n",
                corpus.projects[f.project].name, f.path, f.kind
            ));
        }
        std::fs::write(out_dir.join("injected_faults.txt"), manifest).map_err(|e| e.to_string())?;
        eprintln!("injected {} faults (see injected_faults.txt)", corpus.faults.len());
    }

    eprintln!(
        "wrote {} projects / {files_written} files to {} ({} known flows)",
        corpus.projects.len(),
        out_dir.display(),
        corpus.flows.len()
    );
    Ok(())
}
