//! Fault injection for the fault-tolerance harness.
//!
//! A corpus generated with [`CorpusOptions::fault_rate`](crate::CorpusOptions)
//! `> 0` gets a deterministic fraction of its files corrupted after
//! generation, each labeled with the [`FaultKind`] applied so tests can
//! assert that the pipeline quarantines *exactly* the faulty files. The
//! fault RNG is separate from the generation RNG, so a `fault_rate` of `0`
//! produces byte-identical corpora to builds that predate fault injection.
//!
//! This module damages *source files* before they enter the pipeline; its
//! sibling `seldon_cache::inject_cache_faults` damages *on-disk cache
//! entries* (torn writes, truncations, bit flips, stale stamps) after a
//! run has stored them. Together they cover both persistence boundaries
//! the robustness suite asserts over.

use crate::generator::Corpus;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Marker comment that asks the pipeline's fault harness to panic while
/// analyzing the file (see `AnalyzeOptions::fault_markers` in
/// `seldon-core`). It is a plain Python comment, so the file stays
/// parseable when the harness is off.
pub const PANIC_MARKER: &str = "# seldon:inject-panic";

/// The kinds of file corruption the injector can apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// File cut off mid-source with an unterminated definition appended —
    /// fails strict parsing, recoverable leniently.
    Truncated,
    /// A malformed, stray-indented statement appended — fails strict
    /// parsing, recoverable leniently.
    BadIndent,
    /// Control bytes and token garbage spliced in — fails lexing/parsing.
    CorruptBytes,
    /// A pathologically nested function appended — valid Python, but
    /// exceeds any sane nesting-depth budget.
    DeepNesting,
    /// Megabytes of padding appended — valid Python, but exceeds the
    /// source-size budget.
    Oversized,
    /// [`PANIC_MARKER`] appended — valid Python; panics the analysis only
    /// when the pipeline's fault harness is armed.
    PanicMarker,
}

impl FaultKind {
    /// Every fault kind, in injection rotation order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::Truncated,
        FaultKind::BadIndent,
        FaultKind::CorruptBytes,
        FaultKind::DeepNesting,
        FaultKind::Oversized,
        FaultKind::PanicMarker,
    ];
}

/// Record of one injected fault — the label tests assert against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// Project index within the corpus.
    pub project: usize,
    /// Path of the corrupted file within the project.
    pub path: String,
    /// What was done to it.
    pub kind: FaultKind,
}

/// Nesting depth of [`FaultKind::DeepNesting`]; comfortably above the
/// default depth budget (64) while keeping parser recursion shallow.
const NESTING_DEPTH: usize = 96;

/// Padding target of [`FaultKind::Oversized`]; just above the default
/// source-size budget of 4 MiB.
const OVERSIZED_BYTES: usize = (4 << 20) + 1024;

/// Applies `kind` to `content` in place.
pub fn apply_fault(content: &mut String, kind: FaultKind) {
    match kind {
        FaultKind::Truncated => {
            // Cut at a char boundary near 60%, then guarantee a strict
            // parse failure whatever the cut left behind.
            let mut cut = (content.len() * 3) / 5;
            while cut < content.len() && !content.is_char_boundary(cut) {
                cut += 1;
            }
            content.truncate(cut);
            content.push_str("\ndef truncated_tail(arg\n");
        }
        FaultKind::BadIndent => {
            content.push_str("\n  stray_indent = = 1\n");
        }
        FaultKind::CorruptBytes => {
            content.push_str("\nbad \u{0}\u{1}\u{7} token = = (\n");
        }
        FaultKind::DeepNesting => {
            content.push_str("\ndef pathologically_nested(flag):\n");
            for level in 0..NESTING_DEPTH {
                for _ in 0..level + 1 {
                    content.push_str("    ");
                }
                content.push_str("if flag:\n");
            }
            for _ in 0..NESTING_DEPTH + 1 {
                content.push_str("    ");
            }
            content.push_str("flag = flag\n");
        }
        FaultKind::Oversized => {
            content.push_str("\n# padding\n");
            let line = format!("# {}\n", "x".repeat(62));
            let lines = OVERSIZED_BYTES / line.len() + 1;
            content.reserve(lines * line.len());
            for _ in 0..lines {
                content.push_str(&line);
            }
        }
        FaultKind::PanicMarker => {
            content.push('\n');
            content.push_str(PANIC_MARKER);
            content.push('\n');
        }
    }
}

/// Corrupts roughly `rate` of the corpus's files, cycling through
/// [`FaultKind::ALL`] so every kind appears in a large enough corpus.
/// Deterministic in `seed`; records every fault in `corpus.faults`.
pub(crate) fn inject_faults(corpus: &mut Corpus, rate: f64, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x00FA_171D);
    let rate = rate.clamp(0.0, 1.0);
    let mut faults = Vec::new();
    let mut next_kind = 0usize;
    for (pi, project) in corpus.projects.iter_mut().enumerate() {
        for file in &mut project.files {
            if !rng.gen_bool(rate) {
                continue;
            }
            let kind = FaultKind::ALL[next_kind % FaultKind::ALL.len()];
            next_kind += 1;
            apply_fault(&mut file.content, kind);
            faults.push(InjectedFault { project: pi, path: file.path.clone(), kind });
        }
    }
    corpus.faults.extend(faults);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_corpus, CorpusOptions};
    use crate::universe::Universe;
    use seldon_propgraph::{
        build_source, build_source_budgeted, Budget, BudgetExceeded, BuildError, FileId,
    };

    const CLEAN: &str = "import flask\n\ndef handler():\n    x = flask.request.args.get('q')\n    return x\n";

    fn faulted(kind: FaultKind) -> String {
        let mut s = CLEAN.to_string();
        apply_fault(&mut s, kind);
        s
    }

    #[test]
    fn parse_breaking_faults_fail_strict_parse() {
        for kind in [FaultKind::Truncated, FaultKind::BadIndent, FaultKind::CorruptBytes] {
            let s = faulted(kind);
            assert!(
                build_source(&s, FileId(0)).is_err(),
                "{kind:?} should break strict parsing:\n{s}"
            );
        }
    }

    #[test]
    fn budget_faults_parse_but_trip_default_budget() {
        let deep = faulted(FaultKind::DeepNesting);
        assert!(matches!(
            build_source_budgeted(&deep, FileId(0), &Budget::default()),
            Err(BuildError::OverBudget(BudgetExceeded::Depth { .. }))
        ));
        let big = faulted(FaultKind::Oversized);
        assert!(matches!(
            build_source_budgeted(&big, FileId(0), &Budget::default()),
            Err(BuildError::OverBudget(BudgetExceeded::SourceBytes { .. }))
        ));
        // Without a budget, deep nesting is merely slow, not fatal.
        assert!(build_source(&deep, FileId(0)).is_ok());
    }

    #[test]
    fn panic_marker_file_stays_parseable() {
        let s = faulted(FaultKind::PanicMarker);
        assert!(s.contains(PANIC_MARKER));
        assert!(build_source(&s, FileId(0)).is_ok());
    }

    #[test]
    fn zero_rate_is_byte_identical_to_clean_generation() {
        let opts = CorpusOptions { projects: 4, ..Default::default() };
        let clean = generate_corpus(&Universe::new(), &opts);
        let zero = generate_corpus(
            &Universe::new(),
            &CorpusOptions { fault_rate: 0.0, ..opts },
        );
        assert!(zero.faults.is_empty());
        let a: Vec<&str> = clean.files().map(|(_, f)| f.content.as_str()).collect();
        let b: Vec<&str> = zero.files().map(|(_, f)| f.content.as_str()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn injection_is_deterministic_and_labeled() {
        let opts = CorpusOptions { projects: 6, fault_rate: 0.5, ..Default::default() };
        let a = generate_corpus(&Universe::new(), &opts);
        let b = generate_corpus(&Universe::new(), &opts);
        assert!(!a.faults.is_empty(), "rate 0.5 over many files must fault some");
        assert_eq!(a.faults, b.faults);
        for fault in &a.faults {
            let file = a.projects[fault.project]
                .files
                .iter()
                .find(|f| f.path == fault.path)
                .expect("fault references an existing file");
            if fault.kind == FaultKind::PanicMarker {
                assert!(file.content.contains(PANIC_MARKER));
            }
        }
    }

    #[test]
    fn full_rate_faults_every_file_and_covers_all_kinds() {
        let opts = CorpusOptions { projects: 4, fault_rate: 1.0, ..Default::default() };
        let c = generate_corpus(&Universe::new(), &opts);
        assert_eq!(c.faults.len(), c.file_count());
        let kinds: std::collections::HashSet<FaultKind> =
            c.faults.iter().map(|f| f.kind).collect();
        assert_eq!(kinds.len(), FaultKind::ALL.len(), "rotation covers every kind");
    }
}
