//! # seldon-corpus
//!
//! The synthetic "big code" substrate of the Seldon reproduction: a
//! deterministic generator of Flask/Django-style Python web applications
//! with exact per-flow ground truth, plus the API universe mapping every
//! generated library call to its true taint role.
//!
//! This replaces the paper's GitHub corpus (see DESIGN.md §2): the
//! pipeline still lexes, parses, and analyzes real Python text — only the
//! authorship of that text is synthetic, which is what makes precision
//! measurable instead of hand-estimated.
//!
//! ## Example
//!
//! ```
//! use seldon_corpus::{generate_corpus, CorpusOptions, Universe};
//!
//! let corpus = generate_corpus(
//!     &Universe::new(),
//!     &CorpusOptions { projects: 2, ..Default::default() },
//! );
//! assert!(corpus.file_count() >= 2);
//! ```

#![warn(missing_docs)]

pub mod faults;
pub mod generator;
pub mod universe;

pub use faults::{apply_fault, FaultKind, InjectedFault, PANIC_MARKER};
pub use generator::{
    generate_corpus, Corpus, CorpusOptions, FlowKind, FlowTruth, Lang, Project, SourceFile,
};
pub use universe::{ApiShape, ApiSpec, Category, Universe};
