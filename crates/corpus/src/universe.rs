//! The API universe of the synthetic corpus: every library API the
//! generated web applications may call, with its ground-truth taint role.
//!
//! The universe substitutes for the paper's GitHub corpus libraries. It
//! mixes three populations, mirroring what Seldon faces in the wild:
//!
//! * **seed APIs** — well-known Flask/Django/werkzeug endpoints that go
//!   into the hand-labelled seed specification;
//! * **learnable APIs** — wrapper/third-party libraries with real roles
//!   that are *not* in the seed and must be inferred from co-occurrence;
//! * **no-role APIs** — utility noise (formatting, logging, caching).

use seldon_specs::{Role, SinkSignature, TaintSpec};

/// Vulnerability category, used to keep generated flows semantically
/// coherent (an XSS sanitizer protects an XSS sink, not a SQL one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Cross-site scripting.
    Xss,
    /// SQL injection.
    Sqli,
    /// Path traversal.
    PathTraversal,
    /// OS command injection.
    CommandInjection,
    /// Open redirect.
    OpenRedirect,
}

impl Category {
    /// All categories.
    pub const ALL: [Category; 5] = [
        Category::Xss,
        Category::Sqli,
        Category::PathTraversal,
        Category::CommandInjection,
        Category::OpenRedirect,
    ];
}

/// How an API is invoked in generated code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApiShape {
    /// `expr('lit')` — a source taking a literal key.
    SourceCall,
    /// An attribute/subscript read, e.g. `request.files['f'].filename`.
    SourceRead,
    /// A source read off a handler parameter (Django style):
    /// `request.GET.get('q')` where `request` is the view's parameter.
    SourceParamRead,
    /// `expr(V)` — sanitizer or sink taking the tainted variable.
    UnaryCall,
    /// `expr('lit', V)` — sink whose *second* argument is tainted.
    SecondArgCall,
    /// `expr('lit', meta=V)` — tainted data flows into a harmless keyword
    /// parameter (the paper's "flows into wrong parameter" category).
    WrongParamCall,
    /// `expr(V)` — utility call with no role (noise pass-through).
    NoiseCall,
}

/// One API of the universe.
#[derive(Debug, Clone)]
pub struct ApiSpec {
    /// Canonical (fully resolved) representation, e.g.
    /// `flask.request.args.get()`.
    pub rep: &'static str,
    /// Ground-truth role; `None` for no-role utilities.
    pub role: Option<Role>,
    /// Whether this API goes into the seed specification.
    pub seed: bool,
    /// Import line required by the call template.
    pub import_line: &'static str,
    /// Python expression template; `{V}` is replaced by the tainted
    /// variable, `{L}` by a literal.
    pub template: &'static str,
    /// Invocation shape.
    pub shape: ApiShape,
    /// Vulnerability category.
    pub category: Category,
}

impl ApiSpec {
    /// Whether `rep` (a learned spec entry) refers to this API: exact match
    /// or a dot-suffix relationship in either direction.
    pub fn matches_rep(&self, rep: &str) -> bool {
        if self.rep == rep {
            return true;
        }
        let a = self.rep;
        let b = rep;
        (a.len() > b.len() && a.ends_with(b) && a.as_bytes()[a.len() - b.len() - 1] == b'.')
            || (b.len() > a.len()
                && b.ends_with(a)
                && b.as_bytes()[b.len() - a.len() - 1] == b'.')
    }
}

macro_rules! api {
    ($rep:expr, $role:expr, $seed:expr, $import:expr, $tmpl:expr, $shape:expr, $cat:expr) => {
        ApiSpec {
            rep: $rep,
            role: $role,
            seed: $seed,
            import_line: $import,
            template: $tmpl,
            shape: $shape,
            category: $cat,
        }
    };
}

/// The full API universe.
#[derive(Debug, Clone)]
pub struct Universe {
    apis: Vec<ApiSpec>,
}

impl Default for Universe {
    fn default() -> Self {
        Universe::new()
    }
}

impl Universe {
    /// Builds the standard universe.
    pub fn new() -> Self {
        use ApiShape::*;
        use Category::*;
        use Role::*;
        let apis = vec![
            // ----------------- sources: seed --------------------------------
            api!("flask.request.args.get()", Some(Source), true,
                 "from flask import request", "request.args.get({L})", SourceCall, Xss),
            api!("flask.request.form.get()", Some(Source), true,
                 "from flask import request", "request.form.get({L})", SourceCall, Sqli),
            api!("flask.request.files['f'].filename", Some(Source), true,
                 "from flask import request", "request.files['f'].filename", SourceRead, PathTraversal),
            api!("flask.request.cookies.get()", Some(Source), true,
                 "from flask import request", "request.cookies.get({L})", SourceCall, Xss),
            api!("request.GET.get()", Some(Source), true,
                 "", "request.GET.get({L})", SourceParamRead, Sqli),
            api!("request.POST.get()", Some(Source), true,
                 "", "request.POST.get({L})", SourceParamRead, Xss),
            // ----------------- sources: learnable ---------------------------
            api!("bottle.request.query.get()", Some(Source), false,
                 "from bottle import request as bottle_request", "bottle_request.query.get({L})", SourceCall, Xss),
            api!("webapi.params.fetch()", Some(Source), false,
                 "from webapi import params", "params.fetch({L})", SourceCall, Sqli),
            api!("reqlib.get_field()", Some(Source), false,
                 "import reqlib", "reqlib.get_field({L})", SourceCall, Xss),
            api!("restkit.payload.parse()", Some(Source), false,
                 "from restkit import payload", "payload.parse({L})", SourceCall, CommandInjection),
            api!("flask.request.headers.get()", Some(Source), false,
                 "from flask import request", "request.headers.get({L})", SourceCall, OpenRedirect),
            api!("formlib.InputForm().data", Some(Source), false,
                 "from formlib import InputForm", "InputForm().data", SourceRead, Xss),
            api!("flask.request.stream.read()", Some(Source), false,
                 "from flask import request", "request.stream.read()", SourceCall, CommandInjection),
            api!("cgilib.field_storage.getvalue()", Some(Source), false,
                 "from cgilib import field_storage", "field_storage.getvalue({L})", SourceCall, PathTraversal),
            api!("wsutils.socket_recv()", Some(Source), false,
                 "import wsutils", "wsutils.socket_recv()", SourceCall, Sqli),
            api!("request.match_info.get()", Some(Source), false,
                 "", "request.match_info.get({L})", SourceParamRead, PathTraversal),
            // ----------------- sanitizers: seed -----------------------------
            api!("flask.escape()", Some(Sanitizer), true,
                 "import flask", "flask.escape({V})", UnaryCall, Xss),
            api!("bleach.clean()", Some(Sanitizer), true,
                 "import bleach", "bleach.clean({V})", UnaryCall, Xss),
            api!("werkzeug.utils.secure_filename()", Some(Sanitizer), true,
                 "from werkzeug import utils", "utils.secure_filename({V})", UnaryCall, PathTraversal),
            api!("psycopg2.escape_string()", Some(Sanitizer), true,
                 "import psycopg2", "psycopg2.escape_string({V})", UnaryCall, Sqli),
            api!("shlex.quote()", Some(Sanitizer), true,
                 "import shlex", "shlex.quote({V})", UnaryCall, CommandInjection),
            // ----------------- sanitizers: learnable ------------------------
            api!("htmlutils.sanitize()", Some(Sanitizer), false,
                 "import htmlutils", "htmlutils.sanitize({V})", UnaryCall, Xss),
            api!("purify.purify_html()", Some(Sanitizer), false,
                 "import purify", "purify.purify_html({V})", UnaryCall, Xss),
            api!("dbsafe.quote_sql()", Some(Sanitizer), false,
                 "import dbsafe", "dbsafe.quote_sql({V})", UnaryCall, Sqli),
            api!("secutils.clean_path()", Some(Sanitizer), false,
                 "import secutils", "secutils.clean_path({V})", UnaryCall, PathTraversal),
            api!("shellguard.quote_arg()", Some(Sanitizer), false,
                 "import shellguard", "shellguard.quote_arg({V})", UnaryCall, CommandInjection),
            api!("urlcheck.validate_local()", Some(Sanitizer), false,
                 "import urlcheck", "urlcheck.validate_local({V})", UnaryCall, OpenRedirect),
            api!("markupsafe.escape_silent()", Some(Sanitizer), false,
                 "import markupsafe", "markupsafe.escape_silent({V})", UnaryCall, Xss),
            api!("sqlfilter.scrub()", Some(Sanitizer), false,
                 "import sqlfilter", "sqlfilter.scrub({V})", UnaryCall, Sqli),
            // ----------------- sinks: seed ----------------------------------
            api!("flask.make_response()", Some(Sink), true,
                 "import flask", "flask.make_response({V})", UnaryCall, Xss),
            api!("flask.render_template_string()", Some(Sink), true,
                 "import flask", "flask.render_template_string({V})", UnaryCall, Xss),
            api!("os.system()", Some(Sink), true,
                 "import os", "os.system({V})", UnaryCall, CommandInjection),
            api!("subprocess.call()", Some(Sink), true,
                 "import subprocess", "subprocess.call({V})", UnaryCall, CommandInjection),
            api!("flask.redirect()", Some(Sink), true,
                 "import flask", "flask.redirect({V})", UnaryCall, OpenRedirect),
            api!("flask.send_file()", Some(Sink), true,
                 "import flask", "flask.send_file({V})", UnaryCall, PathTraversal),
            api!("dbapi.connect().cursor().execute()", Some(Sink), true,
                 "import dbapi", "dbapi.connect().cursor().execute({V})", UnaryCall, Sqli),
            // ----------------- sinks: learnable ------------------------------
            api!("webresp.render_page()", Some(Sink), false,
                 "import webresp", "webresp.render_page({V})", UnaryCall, Xss),
            api!("httpkit.redirect_to()", Some(Sink), false,
                 "import httpkit", "httpkit.redirect_to({V})", UnaryCall, OpenRedirect),
            api!("dblib.query.run()", Some(Sink), false,
                 "from dblib import query", "query.run({V})", UnaryCall, Sqli),
            api!("shellexec.run_command()", Some(Sink), false,
                 "import shellexec", "shellexec.run_command({V})", UnaryCall, CommandInjection),
            api!("filestore.save_to()", Some(Sink), false,
                 "import filestore", "filestore.save_to({V})", UnaryCall, PathTraversal),
            api!("mailkit.send_html_mail()", Some(Sink), false,
                 "import mailkit", "mailkit.send_html_mail({L}, {V})", SecondArgCall, Xss),
            api!("tmplforge.expand()", Some(Sink), false,
                 "import tmplforge", "tmplforge.expand({V})", UnaryCall, Xss),
            api!("ormkit.raw_select()", Some(Sink), false,
                 "import ormkit", "ormkit.raw_select({V})", UnaryCall, Sqli),
            api!("archiver.extract_to()", Some(Sink), false,
                 "import archiver", "archiver.extract_to({V})", UnaryCall, PathTraversal),
            // ----------------- additional learnable APIs ---------------------
            api!("pyramid.request.params.getone()", Some(Source), false,
                 "from pyramid import request as pyr_request", "pyr_request.params.getone({L})", SourceCall, Sqli),
            api!("tornlib.arguments.fetch_arg()", Some(Source), false,
                 "from tornlib import arguments", "arguments.fetch_arg({L})", SourceCall, Xss),
            api!("grpckit.metadata.read_value()", Some(Source), false,
                 "from grpckit import metadata", "metadata.read_value({L})", SourceCall, CommandInjection),
            api!("xmlguard.strip_tags()", Some(Sanitizer), false,
                 "import xmlguard", "xmlguard.strip_tags({V})", UnaryCall, Xss),
            api!("pathsafe.jail_to_root()", Some(Sanitizer), false,
                 "import pathsafe", "pathsafe.jail_to_root({V})", UnaryCall, PathTraversal),
            api!("redirguard.same_origin()", Some(Sanitizer), false,
                 "import redirguard", "redirguard.same_origin({V})", UnaryCall, OpenRedirect),
            api!("nosqlkit.raw_find()", Some(Sink), false,
                 "import nosqlkit", "nosqlkit.raw_find({V})", UnaryCall, Sqli),
            api!("procman.spawn_worker()", Some(Sink), false,
                 "import procman", "procman.spawn_worker({V})", UnaryCall, CommandInjection),
            api!("webgo.forward_to()", Some(Sink), false,
                 "import webgo", "webgo.forward_to({V})", UnaryCall, OpenRedirect),
            api!("blobstore.put_object()", Some(Sink), false,
                 "import blobstore", "blobstore.put_object({V})", UnaryCall, PathTraversal),
            api!("jsonfmt.pretty()", None, false,
                 "import jsonfmt", "jsonfmt.pretty({V})", NoiseCall, Xss),
            api!("seqtools.chunk()", None, false,
                 "import seqtools", "seqtools.chunk({V})", NoiseCall, Sqli),
            api!("fmtkit.indent_block()", None, false,
                 "import fmtkit", "fmtkit.indent_block({V})", NoiseCall, OpenRedirect),
            // ----------------- wrong-parameter sinks -------------------------
            // No-role APIs whose harmless parameter receives taint; if the
            // learner marks them as sinks, reports against them fall into
            // the paper's "incorrect sink" bucket.
            api!("auditlog.record_event()", None, false,
                 "import auditlog", "auditlog.record_event('handled', meta={V})", WrongParamCall, Xss),
            api!("metricskit.tag_request()", None, false,
                 "import metricskit", "metricskit.tag_request('route', label={V})", WrongParamCall, Sqli),
            // Real sinks invoked with the taint in a *harmless* parameter
            // (the paper's "flows into wrong parameter" report category).
            api!("subprocess.call()", Some(Sink), true,
                 "import subprocess", "subprocess.call(['ls'], env={V})", WrongParamCall, CommandInjection),
            api!("flask.send_file()", Some(Sink), true,
                 "import flask", "flask.send_file('static/report.pdf', download_name={V})", WrongParamCall, PathTraversal),
            api!("webresp.render_page()", Some(Sink), false,
                 "import webresp", "webresp.render_page('home.html', cache_key={V})", WrongParamCall, Xss),
            // ----------------- no-role utilities ----------------------------
            api!("textutils.wrap()", None, false,
                 "import textutils", "textutils.wrap({V})", NoiseCall, Xss),
            api!("strfmt.titlecase()", None, false,
                 "import strfmt", "strfmt.titlecase({V})", NoiseCall, Xss),
            api!("cachekit.store()", None, false,
                 "import cachekit", "cachekit.store({V})", NoiseCall, Sqli),
            api!("tokenlib.shorten()", None, false,
                 "import tokenlib", "tokenlib.shorten({V})", NoiseCall, OpenRedirect),
            api!("pathetc.norm_slashes()", None, false,
                 "import pathetc", "pathetc.norm_slashes({V})", NoiseCall, PathTraversal),
            api!("timefmt.stamp()", None, false,
                 "import timefmt", "timefmt.stamp({V})", NoiseCall, CommandInjection),
        ];
        Universe { apis }
    }

    /// All APIs.
    pub fn apis(&self) -> &[ApiSpec] {
        &self.apis
    }

    /// APIs of a given role within a category, split by seed membership.
    /// Wrong-parameter call variants are excluded — they are only reached
    /// through [`Universe::wrong_param`].
    pub fn by_role(&self, role: Role, category: Category, seed: bool) -> Vec<&ApiSpec> {
        self.apis
            .iter()
            .filter(|a| {
                a.role == Some(role)
                    && a.category == category
                    && a.seed == seed
                    && a.shape != ApiShape::WrongParamCall
            })
            .collect()
    }

    /// No-role utility APIs (any category).
    pub fn noise(&self) -> Vec<&ApiSpec> {
        self.apis
            .iter()
            .filter(|a| a.role.is_none() && a.shape == ApiShape::NoiseCall)
            .collect()
    }

    /// Wrong-parameter sink-lookalikes.
    pub fn wrong_param(&self) -> Vec<&ApiSpec> {
        self.apis
            .iter()
            .filter(|a| a.shape == ApiShape::WrongParamCall)
            .collect()
    }

    /// Ground-truth role of a learned representation, if it refers to any
    /// universe API (with suffix tolerance).
    ///
    /// Chain *prefixes* of source APIs also count as sources: the object
    /// returned by `flask.request.args` is exactly as attacker-controlled
    /// as `flask.request.args.get()` — the paper's manually evaluated
    /// samples (App. A) mark such reads correct (`self.request`,
    /// `u.username`, ...).
    pub fn role_of_rep(&self, rep: &str) -> Option<Role> {
        // Exact matches take precedence over suffix matches.
        if let Some(a) = self.apis.iter().find(|a| a.rep == rep) {
            return a.role;
        }
        if let Some(a) = self.apis.iter().find(|a| a.matches_rep(rep)) {
            return a.role;
        }
        if self.is_source_chain_prefix(rep) {
            return Some(Role::Source);
        }
        None
    }

    /// Whether `rep` is a chain prefix of some source API (at a `.`/`[`
    /// boundary), with module-qualification tolerance. Requires at least
    /// two components (or the bare `request` object) to avoid counting
    /// top-level module names as sources.
    pub fn is_source_chain_prefix(&self, rep: &str) -> bool {
        if rep != "request" && !rep.contains('.') {
            return false;
        }
        self.apis
            .iter()
            .filter(|a| a.role == Some(Role::Source))
            .any(|a| {
                // Try the full API rep and each of its dot suffixes.
                let mut candidates = vec![a.rep.to_string()];
                let mut remaining = a.rep;
                while let Some(pos) = remaining.find('.') {
                    remaining = &remaining[pos + 1..];
                    candidates.push(remaining.to_string());
                }
                candidates.iter().any(|full| {
                    full.len() > rep.len()
                        && full.starts_with(rep)
                        && matches!(full.as_bytes()[rep.len()], b'.' | b'[')
                })
            })
    }

    /// Whether a representation refers to a seed API.
    pub fn is_seed_rep(&self, rep: &str) -> bool {
        self.apis.iter().any(|a| a.seed && a.matches_rep(rep))
    }

    /// Builds the seed specification (the corpus analogue of App. B).
    pub fn seed_spec(&self) -> TaintSpec {
        let mut spec = TaintSpec::new();
        for a in &self.apis {
            if a.seed {
                if let Some(role) = a.role {
                    spec.add(a.rep, role);
                }
            }
        }
        for pattern in [
            "*.strip()", "*.split()*", "*.format()", "*.lower()", "*.upper()",
            "*.append()", "*.encode()", "*.decode()", "*len()", "str()",
            "*logging*", "*.items()", "*.keys()", "*.values()", "print()",
            "range()", "*.join()",
        ] {
            spec.blacklist(pattern);
        }
        spec
    }

    /// The seed specification for a JS-language corpus: identical API
    /// roles (canonical representations are shared across languages), the
    /// shared blacklist, plus patterns for JS-only noise idioms (`.trim()`
    /// replaces `.strip()`, `.length` replaces `len()`). The Python
    /// [`Universe::seed_spec`] is untouched by JS support.
    pub fn seed_spec_js(&self) -> TaintSpec {
        let mut spec = self.seed_spec();
        for pattern in ["*.trim()", "*.length", "*.toString()", "*.concat()"] {
            spec.blacklist(pattern);
        }
        spec
    }

    /// Sink signatures for the APIs whose harmless parameters the corpus
    /// exercises (the §3.3 parameter-sensitivity extension).
    pub fn sink_signatures(&self) -> Vec<(&'static str, SinkSignature)> {
        vec![
            ("subprocess.call()", SinkSignature::positional([0])),
            ("flask.send_file()", SinkSignature::positional([0])),
            ("webresp.render_page()", SinkSignature::positional([0])),
        ]
    }

    /// The seed spec extended with parameter-sensitive sink signatures.
    pub fn seed_spec_with_signatures(&self) -> TaintSpec {
        let mut spec = self.seed_spec();
        for (api, sig) in self.sink_signatures() {
            spec.set_signature(api, sig);
        }
        spec
    }

    /// A seed spec with only every other entry kept (the paper's Q6
    /// half-seed ablation).
    pub fn half_seed_spec(&self) -> TaintSpec {
        let full = self.seed_spec();
        let mut spec = TaintSpec::new();
        for (i, (api, roles)) in full.iter().enumerate() {
            if i % 2 == 0 {
                spec.add_set(api, roles);
            }
        }
        for pattern in [
            "*.strip()", "*.split()*", "*.format()", "*.lower()", "*.upper()",
            "*.append()", "*.encode()", "*.decode()", "*len()", "str()",
            "*logging*", "*.items()", "*.keys()", "*.values()", "print()",
            "range()", "*.join()",
        ] {
            spec.blacklist(pattern);
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_is_populated() {
        let u = Universe::new();
        assert!(u.apis().len() >= 45);
        // At least one learnable API of each role per main category.
        for cat in [Category::Xss, Category::Sqli] {
            for role in Role::ALL {
                assert!(
                    !u.by_role(role, cat, false).is_empty(),
                    "no learnable {role} for {cat:?}"
                );
            }
        }
        assert!(!u.noise().is_empty());
        assert!(!u.wrong_param().is_empty());
    }

    #[test]
    fn seed_spec_contains_only_seed_apis() {
        let u = Universe::new();
        let spec = u.seed_spec();
        assert!(spec.has_role("flask.request.args.get()", Role::Source));
        assert!(spec.has_role("os.system()", Role::Sink));
        assert!(!spec.has_role("htmlutils.sanitize()", Role::Sanitizer));
        assert!(spec.blacklist_len() > 10);
    }

    #[test]
    fn half_seed_is_smaller() {
        let u = Universe::new();
        let full = u.seed_spec();
        let half = u.half_seed_spec();
        assert!(half.role_count() < full.role_count());
        assert!(half.role_count() >= full.role_count() / 2 - 1);
    }

    #[test]
    fn role_of_rep_with_suffix_tolerance() {
        let u = Universe::new();
        assert_eq!(u.role_of_rep("flask.request.args.get()"), Some(Role::Source));
        assert_eq!(u.role_of_rep("request.args.get()"), Some(Role::Source));
        assert_eq!(u.role_of_rep("htmlutils.sanitize()"), Some(Role::Sanitizer));
        assert_eq!(u.role_of_rep("textutils.wrap()"), None);
        assert_eq!(u.role_of_rep("totally.unknown()"), None);
    }

    #[test]
    fn matches_rep_requires_dot_boundary() {
        let u = Universe::new();
        let a = &u.apis()[0]; // flask.request.args.get()
        assert!(a.matches_rep("request.args.get()"));
        assert!(!a.matches_rep("s.get()"));
        assert!(!a.matches_rep("args.get"));
    }

    #[test]
    fn is_seed_rep() {
        let u = Universe::new();
        assert!(u.is_seed_rep("flask.request.args.get()"));
        assert!(!u.is_seed_rep("webapi.params.fetch()"));
    }

    #[test]
    fn templates_reference_expected_placeholders() {
        let u = Universe::new();
        for a in u.apis() {
            match a.shape {
                ApiShape::SourceCall | ApiShape::SourceParamRead => {
                    // Sources never consume a tainted variable.
                    assert!(!a.template.contains("{V}"), "{}", a.rep)
                }
                ApiShape::SourceRead => {
                    assert!(!a.template.contains("{V}"), "{}", a.rep)
                }
                ApiShape::UnaryCall | ApiShape::NoiseCall => {
                    assert!(a.template.contains("{V}"), "{} missing {{V}}", a.rep)
                }
                ApiShape::SecondArgCall | ApiShape::WrongParamCall => {
                    assert!(a.template.contains("{V}"), "{} missing {{V}}", a.rep)
                }
            }
        }
    }
}
