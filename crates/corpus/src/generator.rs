//! Deterministic generator of realistic synthetic web applications.
//!
//! Each project is a handful of source files containing Flask/Django-style
//! route handlers. Every handler implements one *flow pattern* (sanitized
//! chain, unsanitized vulnerability, wrong-parameter flow, noise, ...);
//! the generator records the ground truth of every flow so experiments can
//! measure precision exactly instead of estimating it by manual
//! inspection.
//!
//! The generator emits either Python ([`Lang::Py`], the default) or a
//! JS-like subset ([`Lang::Js`]) from the *same* RNG draw sequence: the
//! language only changes how each already-decided flow is rendered to
//! text, so a seed produces structurally parallel corpora in both
//! languages and the Python output is byte-identical to what a
//! JS-unaware build generates.

use crate::universe::{ApiShape, ApiSpec, Category, Universe};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use seldon_specs::Role;
use std::collections::BTreeSet;

/// What a generated handler's data flow truly is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    /// Source → sanitizer → sink: correctly protected, not a bug.
    Sanitized,
    /// Source → sink with no sanitizer: a genuine vulnerability.
    Vulnerable {
        /// Whether the flow is exploitable in context (the paper's
        /// "vulnerable flow, but no bug" distinction, e.g. a text/plain
        /// content type defusing an XSS).
        exploitable: bool,
    },
    /// Source flows into a harmless parameter of an API.
    WrongParam,
    /// Sink called with a constant; source unused elsewhere. Safe.
    SafeLiteral,
    /// Utility-only handler; no security-relevant flow.
    Noise,
}

/// Ground truth for one generated flow.
#[derive(Debug, Clone)]
pub struct FlowTruth {
    /// Project index within the corpus.
    pub project: usize,
    /// File path within the project.
    pub file: String,
    /// Handler function name.
    pub handler: String,
    /// The flow kind.
    pub kind: FlowKind,
    /// Canonical source representation (if the flow has a source).
    pub source: Option<&'static str>,
    /// Canonical sanitizer representation (if sanitized).
    pub sanitizer: Option<&'static str>,
    /// Canonical sink representation (if the flow reaches a call).
    pub sink: Option<&'static str>,
}

/// Source language of a generated corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Lang {
    /// Python (Flask/Django style), analyzed by `seldon-pyast`.
    #[default]
    Py,
    /// JS-like subset (Express style), analyzed by `seldon-jsfront`.
    Js,
}

impl Lang {
    /// File extension for generated sources.
    pub fn extension(self) -> &'static str {
        match self {
            Lang::Py => "py",
            Lang::Js => "js",
        }
    }
}

/// One generated source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the project root, e.g. `app/views_2.py`.
    pub path: String,
    /// Source text (Python or JS, per [`CorpusOptions::lang`]).
    pub content: String,
}

/// One generated project (repository).
#[derive(Debug, Clone)]
pub struct Project {
    /// Project name, e.g. `project_017`.
    pub name: String,
    /// Project files.
    pub files: Vec<SourceFile>,
}

/// A generated corpus with its ground truth.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    /// The projects.
    pub projects: Vec<Project>,
    /// Ground truth for every generated flow.
    pub flows: Vec<FlowTruth>,
    /// Representations of generated app-level wrappers that truly carry a
    /// role (e.g. a helper returning a source value is itself a source).
    pub derived_roles: Vec<(String, Role)>,
    /// Faults injected into files (see [`CorpusOptions::fault_rate`]);
    /// empty for clean corpora.
    pub faults: Vec<crate::faults::InjectedFault>,
}

impl Corpus {
    /// Total number of files.
    pub fn file_count(&self) -> usize {
        self.projects.iter().map(|p| p.files.len()).sum()
    }

    /// Iterates `(project index, file)` pairs.
    pub fn files(&self) -> impl Iterator<Item = (usize, &SourceFile)> {
        self.projects
            .iter()
            .enumerate()
            .flat_map(|(i, p)| p.files.iter().map(move |f| (i, f)))
    }
}

/// Corpus generation parameters.
#[derive(Debug, Clone)]
pub struct CorpusOptions {
    /// Number of projects.
    pub projects: usize,
    /// Files per project (inclusive range).
    pub files_per_project: (usize, usize),
    /// Handlers per file (inclusive range).
    pub handlers_per_file: (usize, usize),
    /// RNG seed; the same options always generate the same corpus.
    pub rng_seed: u64,
    /// Probability a role slot picks a seed API instead of a learnable one.
    pub seed_api_bias: f64,
    /// Probability each generated file is corrupted with an injected fault
    /// (see [`crate::faults::FaultKind`]). `0.0` disables injection and
    /// leaves generation byte-identical to a fault-unaware build.
    pub fault_rate: f64,
    /// Language the corpus is rendered in. Changing the language does not
    /// change any RNG draw, only the emitted text.
    pub lang: Lang,
}

impl Default for CorpusOptions {
    fn default() -> Self {
        CorpusOptions {
            projects: 40,
            files_per_project: (2, 5),
            handlers_per_file: (2, 5),
            rng_seed: 0xC0FFEE,
            seed_api_bias: 0.5,
            fault_rate: 0.0,
            lang: Lang::Py,
        }
    }
}

/// Generates a corpus.
pub fn generate_corpus(universe: &Universe, opts: &CorpusOptions) -> Corpus {
    let mut rng = SmallRng::seed_from_u64(opts.rng_seed);
    let mut corpus = Corpus::default();
    for pi in 0..opts.projects {
        let nfiles = rng.gen_range(opts.files_per_project.0..=opts.files_per_project.1);
        let mut files = Vec::new();
        for fi in 0..nfiles {
            let path = format!("app/views_{fi}.{}", opts.lang.extension());
            let nhandlers =
                rng.gen_range(opts.handlers_per_file.0..=opts.handlers_per_file.1);
            let mut gen = FileGen::new(universe, &mut rng, pi, &path, opts.lang);
            for hi in 0..nhandlers {
                gen.emit_handler(hi);
            }
            let (content, flows, derived) = gen.finish();
            corpus.flows.extend(flows);
            corpus.derived_roles.extend(derived);
            files.push(SourceFile { path, content });
        }
        corpus.projects.push(Project { name: format!("project_{pi:03}"), files });
    }
    if opts.fault_rate > 0.0 {
        crate::faults::inject_faults(&mut corpus, opts.fault_rate, opts.rng_seed);
    }
    corpus
}

/// Builds one file's text and ground truth.
struct FileGen<'u, 'r> {
    universe: &'u Universe,
    rng: &'r mut SmallRng,
    project: usize,
    path: String,
    lang: Lang,
    imports: BTreeSet<String>,
    body: String,
    flows: Vec<FlowTruth>,
    derived: Vec<(String, Role)>,
    used_helpers: std::collections::HashSet<&'static str>,
    var_counter: usize,
}

impl<'u, 'r> FileGen<'u, 'r> {
    fn new(
        universe: &'u Universe,
        rng: &'r mut SmallRng,
        project: usize,
        path: &str,
        lang: Lang,
    ) -> Self {
        FileGen {
            universe,
            rng,
            project,
            path: path.to_string(),
            lang,
            imports: BTreeSet::new(),
            body: String::new(),
            flows: Vec::new(),
            derived: Vec::new(),
            used_helpers: std::collections::HashSet::new(),
            var_counter: 0,
        }
    }

    fn fresh_var(&mut self) -> String {
        let v = format!("v{}", self.var_counter);
        self.var_counter += 1;
        v
    }

    /// Renders one `name = expr` binding in the corpus language.
    fn assign(&self, v: &str, expr: &str) -> String {
        match self.lang {
            Lang::Py => format!("{v} = {expr}"),
            Lang::Js => format!("const {v} = {expr};"),
        }
    }

    /// Renders one `return expr` statement in the corpus language.
    fn ret(&self, expr: &str) -> String {
        match self.lang {
            Lang::Py => format!("return {expr}"),
            Lang::Js => format!("return {expr};"),
        }
    }

    /// Renders an API expression template in the corpus language
    /// (keyword arguments become a trailing options object in JS).
    fn tmpl(&self, t: &str) -> String {
        match self.lang {
            Lang::Py => t.to_string(),
            Lang::Js => js_template(t),
        }
    }

    fn use_api(&mut self, api: &ApiSpec) {
        if !api.import_line.is_empty() {
            let line = match self.lang {
                Lang::Py => api.import_line.to_string(),
                Lang::Js => js_import(api.import_line),
            };
            self.imports.insert(line);
        }
    }

    fn pick<'a>(&mut self, options: &[&'a ApiSpec]) -> &'a ApiSpec {
        options.choose(self.rng).expect("non-empty api list")
    }

    /// Picks an API of `role` in `category`, seed-vs-learnable weighted.
    fn pick_role(&mut self, role: Role, category: Category, bias: f64) -> &'u ApiSpec {
        let want_seed = self.rng.gen_bool(bias);
        let pool = self.universe.by_role(role, category, want_seed);
        let pool = if pool.is_empty() {
            self.universe.by_role(role, category, !want_seed)
        } else {
            pool
        };
        // Fall back to any category if this one lacks the role entirely.
        if pool.is_empty() {
            let any: Vec<&ApiSpec> = self
                .universe
                .apis()
                .iter()
                .filter(|a| a.role == Some(role) && a.shape != ApiShape::WrongParamCall)
                .collect();
            return self.pick(&any);
        }
        self.pick(&pool)
    }

    fn emit_handler(&mut self, index: usize) {
        let category = *Category::ALL.choose(self.rng).expect("categories");
        let roll: f64 = self.rng.gen();
        let kind = if roll < 0.46 {
            FlowKind::Sanitized
        } else if roll < 0.62 {
            FlowKind::Vulnerable { exploitable: self.rng.gen_bool(0.6) }
        } else if roll < 0.70 {
            FlowKind::WrongParam
        } else if roll < 0.80 {
            FlowKind::SafeLiteral
        } else {
            FlowKind::Noise
        };
        self.emit_flow(index, category, kind);
    }

    /// Emits one handler implementing `kind` for `category`.
    fn emit_flow(&mut self, index: usize, category: Category, kind: FlowKind) {
        // Handler names are unique per project (as in real code), so the
        // most specific parameter-anchored representations are corpus-rare
        // and only their suffix backoffs are shared.
        let handler = format!("handler_p{}_{}_{}", self.project, self.path_stub(), index);
        match kind {
            FlowKind::Noise => self.emit_noise_handler(&handler),
            FlowKind::SafeLiteral => self.emit_safe_literal(&handler, category),
            FlowKind::WrongParam => self.emit_wrong_param(&handler, category),
            FlowKind::Sanitized => self.emit_chain(&handler, category, true, true),
            FlowKind::Vulnerable { exploitable } => {
                self.emit_chain(&handler, category, false, exploitable)
            }
        }
    }

    fn path_stub(&self) -> String {
        self.path
            .trim_start_matches("app/views_")
            .trim_end_matches(".py")
            .trim_end_matches(".js")
            .to_string()
    }

    /// The main pattern: source → [noise] → (sanitizer?) → [noise] → sink.
    fn emit_chain(&mut self, handler: &str, category: Category, sanitized: bool, exploitable: bool) {
        let source = self.pick_role(Role::Source, category, 0.5);
        let sink = self.pick_role(Role::Sink, category, 0.5);
        let sanitizer = if sanitized {
            Some(self.pick_role(Role::Sanitizer, category, 0.5))
        } else {
            None
        };
        self.use_api(source);
        self.use_api(sink);
        if let Some(s) = sanitizer {
            self.use_api(s);
        }

        let param_style = source.shape == ApiShape::SourceParamRead;
        // Django-style class-based views exercise the Class::method(param
        // request) representation levels of §3.2.
        let class_style = param_style && self.rng.gen_bool(0.35);
        // Vulnerable code tends to be short and direct (the classic
        // copy-paste bug); carefully engineered code wraps inputs in
        // helpers and sanitizes them.
        let helper_p = if sanitized { 0.30 } else { 0.08 };
        let via_helper = self.rng.gen_bool(helper_p) && !param_style;
        let with_branch = sanitized && self.rng.gen_bool(0.2);

        let mut lines: Vec<String> = Vec::new();
        let sig_param = if param_style { "request" } else { "" };

        // Source line.
        let v_src = self.fresh_var();
        let lit = format!("'{}'", pick_literal(self.rng));
        let src_expr = self.tmpl(source.template).replace("{L}", &lit);
        if via_helper {
            // Helper names come from a small realistic pool, so the same
            // wrapper name recurs across projects — exactly the cross-
            // project conflation big-code learning exploits.
            const HELPER_POOL: [&str; 8] = [
                "fetch_input", "read_param", "load_value", "get_payload",
                "read_field", "fetch_request_data", "load_user_input", "get_form_value",
            ];
            let helper = HELPER_POOL[self.rng.gen_range(0..HELPER_POOL.len())];
            if self.used_helpers.insert(helper) {
                match self.lang {
                    Lang::Py => self
                        .body
                        .push_str(&format!("def {helper}():\n    return {src_expr}\n\n")),
                    Lang::Js => self.body.push_str(&format!(
                        "function {helper}() {{\n    return {src_expr};\n}}\n\n"
                    )),
                }
                lines.push(self.assign(&v_src, &format!("{helper}()")));
                // The wrapper itself is a true source at app level.
                self.derived.push((format!("{helper}()"), Role::Source));
            } else {
                // Name already taken in this file: inline instead.
                lines.push(self.assign(&v_src, &src_expr));
            }
        } else {
            lines.push(self.assign(&v_src, &src_expr));
        }

        // Optional noise hop (more common in longer, sanitized code).
        let noise_p = if sanitized { 0.40 } else { 0.15 };
        let mut cur = v_src.clone();
        if self.rng.gen_bool(noise_p) {
            cur = self.emit_noise_hop(&mut lines, &cur);
        }

        // Sanitizer (directly, or on one branch only — still safe overall
        // when the unsanitized branch does not reach the sink).
        if let Some(san) = sanitizer {
            let v = self.fresh_var();
            let san_tmpl = self.tmpl(san.template);
            let san_expr = san_tmpl.replace("{V}", &cur);
            if with_branch {
                match self.lang {
                    Lang::Py => {
                        lines.push(format!("if {cur}:"));
                        lines.push(format!("    {v} = {san_expr}"));
                        lines.push("else:".to_string());
                        lines.push(format!("    {v} = {}", san_tmpl.replace("{V}", "''")));
                    }
                    Lang::Js => {
                        lines.push(format!("let {v};"));
                        lines.push(format!("if ({cur}) {{"));
                        lines.push(format!("    {v} = {san_expr};"));
                        lines.push("} else {".to_string());
                        lines.push(format!("    {v} = {};", san_tmpl.replace("{V}", "''")));
                        lines.push("}".to_string());
                    }
                }
            } else {
                lines.push(self.assign(&v, &san_expr));
            }
            cur = v;
        }

        // Optional second noise hop.
        if self.rng.gen_bool(noise_p * 0.6) {
            cur = self.emit_noise_hop(&mut lines, &cur);
        }

        // Sink line.
        let sink_tmpl = self.tmpl(sink.template);
        let sink_expr = match sink.shape {
            ApiShape::SecondArgCall => sink_tmpl
                .replace("{L}", &format!("'{}'", pick_literal(self.rng)))
                .replace("{V}", &cur),
            _ => sink_tmpl.replace("{V}", &cur),
        };
        lines.push(self.ret(&sink_expr));

        if class_style {
            self.write_class_handler(handler, &lines);
        } else {
            self.write_handler(handler, sig_param, &lines, !param_style);
        }

        self.flows.push(FlowTruth {
            project: self.project,
            file: self.path.clone(),
            handler: handler.to_string(),
            kind: if sanitized {
                FlowKind::Sanitized
            } else {
                FlowKind::Vulnerable { exploitable }
            },
            source: Some(source.rep),
            sanitizer: sanitizer.map(|s| s.rep),
            sink: Some(sink.rep),
        });
    }

    /// Tainted data into a harmless parameter.
    fn emit_wrong_param(&mut self, handler: &str, category: Category) {
        let source = self.pick_role(Role::Source, category, 0.5);
        let wp_pool = self.universe.wrong_param();
        let wp = *wp_pool.choose(self.rng).expect("wrong-param apis");
        self.use_api(source);
        self.use_api(wp);
        let param_style = source.shape == ApiShape::SourceParamRead;
        let v = self.fresh_var();
        let lit = format!("'{}'", pick_literal(self.rng));
        let src_expr = self.tmpl(source.template).replace("{L}", &lit);
        let wp_expr = self.tmpl(wp.template).replace("{V}", &v);
        let lines = vec![self.assign(&v, &src_expr), self.ret(&wp_expr)];
        let sig_param = if param_style { "request" } else { "" };
        self.write_handler(handler, sig_param, &lines, !param_style);
        self.flows.push(FlowTruth {
            project: self.project,
            file: self.path.clone(),
            handler: handler.to_string(),
            kind: FlowKind::WrongParam,
            source: Some(source.rep),
            sanitizer: None,
            sink: Some(wp.rep),
        });
    }

    /// Sink fed by a constant; a source read whose value goes nowhere.
    fn emit_safe_literal(&mut self, handler: &str, category: Category) {
        let source = self.pick_role(Role::Source, category, 0.5);
        let sink = self.pick_role(Role::Sink, category, 0.5);
        self.use_api(source);
        self.use_api(sink);
        let param_style = source.shape == ApiShape::SourceParamRead;
        let v = self.fresh_var();
        let lit = format!("'{}'", pick_literal(self.rng));
        let src_expr = self.tmpl(source.template).replace("{L}", &lit);
        let sink_expr = self
            .tmpl(sink.template)
            .replace("{V}", &format!("'{}'", pick_literal(self.rng)));
        let status_line = match self.lang {
            Lang::Py => format!("status = len({v}) if {v} else 0"),
            // `.length` is the JS analogue of the blacklisted `len()` use:
            // the source value is consumed but never reaches the sink.
            Lang::Js => format!("const status = {v}.length;"),
        };
        let lines = vec![self.assign(&v, &src_expr), status_line, self.ret(&sink_expr)];
        let sig_param = if param_style { "request" } else { "" };
        self.write_handler(handler, sig_param, &lines, !param_style);
        self.flows.push(FlowTruth {
            project: self.project,
            file: self.path.clone(),
            handler: handler.to_string(),
            kind: FlowKind::SafeLiteral,
            source: Some(source.rep),
            sanitizer: None,
            sink: Some(sink.rep),
        });
    }

    /// Pure utility handler (no roles involved).
    fn emit_noise_handler(&mut self, handler: &str) {
        let noise_pool = self.universe.noise();
        let n1 = *noise_pool.choose(self.rng).expect("noise");
        let n2 = *noise_pool.choose(self.rng).expect("noise");
        self.use_api(n1);
        self.use_api(n2);
        let v0 = self.fresh_var();
        let v1 = self.fresh_var();
        let n1_expr = self
            .tmpl(n1.template)
            .replace("{V}", &format!("'{}'", pick_literal(self.rng)));
        let n2_expr = self.tmpl(n2.template).replace("{V}", &v0);
        let lines = vec![
            self.assign(&v0, &n1_expr),
            self.assign(&v1, &n2_expr),
            self.ret(&v1),
        ];
        self.write_handler(handler, "", &lines, true);
        self.flows.push(FlowTruth {
            project: self.project,
            file: self.path.clone(),
            handler: handler.to_string(),
            kind: FlowKind::Noise,
            source: None,
            sanitizer: None,
            sink: None,
        });
    }

    /// A taint-preserving hop with no true role: either a no-role API call,
    /// a blacklisted string method, or an f-string.
    fn emit_noise_hop(&mut self, lines: &mut Vec<String>, cur: &str) -> String {
        let v = self.fresh_var();
        match self.rng.gen_range(0..3u8) {
            0 => {
                let pool = self.universe.noise();
                let api = *pool.choose(self.rng).expect("noise");
                self.use_api(api);
                let expr = self.tmpl(api.template).replace("{V}", cur);
                lines.push(self.assign(&v, &expr));
            }
            1 => {
                let expr = match self.lang {
                    Lang::Py => format!("{cur}.strip()"),
                    Lang::Js => format!("{cur}.trim()"),
                };
                lines.push(self.assign(&v, &expr));
            }
            _ => {
                let line = match self.lang {
                    Lang::Py => format!("{v} = f\"item: {{{cur}}}\""),
                    Lang::Js => format!("const {v} = 'item: ' + {cur};"),
                };
                lines.push(line);
            }
        }
        v
    }

    /// A Django-style class-based view: the handler becomes a `get`/`post`
    /// method of a view class deriving from `viewlib.BaseView`. The JS
    /// subset has no classes, so a JS corpus renders the same decision as
    /// a `{View}_{method}` request-parameter function.
    fn write_class_handler(&mut self, name: &str, lines: &[String]) {
        let class_name = format!(
            "View{}",
            name.strip_prefix("handler_").unwrap_or(name).replace('_', "X")
        );
        let method = if self.rng.gen_bool(0.5) { "get" } else { "post" };
        match self.lang {
            Lang::Py => {
                self.imports.insert("from viewlib import BaseView".to_string());
                self.body.push_str(&format!("class {class_name}(BaseView):\n"));
                self.body.push_str(&format!("    def {method}(self, request):\n"));
                for line in lines {
                    self.body.push_str("        ");
                    self.body.push_str(line);
                    self.body.push('\n');
                }
                self.body.push('\n');
            }
            Lang::Js => {
                self.body
                    .push_str(&format!("function {class_name}_{method}(request) {{\n"));
                for line in lines {
                    self.body.push_str("    ");
                    self.body.push_str(line);
                    self.body.push('\n');
                }
                self.body.push_str("}\n\n");
            }
        }
    }

    fn write_handler(&mut self, name: &str, param: &str, lines: &[String], with_route: bool) {
        match self.lang {
            Lang::Py => {
                if with_route {
                    self.imports.insert("from flask import app".to_string());
                    self.body.push_str(&format!(
                        "@app.route('/{name}', methods=['GET', 'POST'])\n"
                    ));
                }
                self.body.push_str(&format!("def {name}({param}):\n"));
                for line in lines {
                    self.body.push_str("    ");
                    self.body.push_str(line);
                    self.body.push('\n');
                }
                self.body.push('\n');
            }
            Lang::Js => {
                if with_route {
                    self.imports.insert("import { app } from 'flask';".to_string());
                }
                self.body.push_str(&format!("function {name}({param}) {{\n"));
                for line in lines {
                    self.body.push_str("    ");
                    self.body.push_str(line);
                    self.body.push('\n');
                }
                self.body.push_str("}\n");
                if with_route {
                    // Express-style registration replaces the decorator.
                    self.body.push_str(&format!("app.route('/{name}', {name});\n"));
                }
                self.body.push('\n');
            }
        }
    }

    fn finish(self) -> (String, Vec<FlowTruth>, Vec<(String, Role)>) {
        let mut content = String::new();
        for imp in &self.imports {
            content.push_str(imp);
            content.push('\n');
        }
        content.push('\n');
        content.push_str(&self.body);
        (content, self.flows, self.derived)
    }
}

fn pick_literal(rng: &mut SmallRng) -> &'static str {
    const LITERALS: [&str; 10] =
        ["q", "name", "id", "path", "file", "next", "cmd", "title", "page", "user"];
    LITERALS[rng.gen_range(0..LITERALS.len())]
}

/// Translates a Python import line to its ES-module equivalent. The JS
/// binding resolves to the same dotted path, so the canonical API
/// representations are identical across both corpus languages.
fn js_import(line: &str) -> String {
    if let Some(rest) = line.strip_prefix("from ") {
        if let Some((module, names)) = rest.split_once(" import ") {
            return format!("import {{ {names} }} from '{module}';");
        }
    }
    if let Some(module) = line.strip_prefix("import ") {
        return format!("import {module} from '{module}';");
    }
    line.to_string()
}

/// Translates a Python expression template to JS. Call/member/subscript
/// chains are shared syntax; only trailing keyword arguments differ — they
/// become an options-object argument (`f(x, meta={V})` → `f(x, { meta: {V} })`).
fn js_template(t: &str) -> String {
    if let Some(eq) = t.find("={V})") {
        if let Some(comma) = t[..eq].rfind(", ") {
            let name = &t[comma + 2..eq];
            if !name.is_empty()
                && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                return format!("{}, {{ {name}: {{V}} }})", &t[..comma]);
            }
        }
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldon_propgraph::{build_source, FileId};

    fn small() -> Corpus {
        generate_corpus(
            &Universe::new(),
            &CorpusOptions { projects: 5, ..Default::default() },
        )
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.file_count(), b.file_count());
        let fa: Vec<&str> = a.files().map(|(_, f)| f.content.as_str()).collect();
        let fb: Vec<&str> = b.files().map(|(_, f)| f.content.as_str()).collect();
        assert_eq!(fa, fb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = small();
        let b = generate_corpus(
            &Universe::new(),
            &CorpusOptions { projects: 5, rng_seed: 99, ..Default::default() },
        );
        let fa: String = a.files().map(|(_, f)| f.content.clone()).collect();
        let fb: String = b.files().map(|(_, f)| f.content.clone()).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn every_file_parses_and_builds() {
        let c = small();
        assert!(c.file_count() >= 10);
        for (i, (_, f)) in c.files().enumerate() {
            let g = build_source(&f.content, FileId(i as u32))
                .unwrap_or_else(|e| panic!("file {} failed: {e}\n{}", f.path, f.content));
            assert!(g.event_count() > 0, "no events in {}", f.path);
        }
    }

    #[test]
    fn ground_truth_covers_handlers() {
        let c = small();
        assert!(!c.flows.is_empty());
        let sanitized = c.flows.iter().filter(|f| f.kind == FlowKind::Sanitized).count();
        let vulnerable = c
            .flows
            .iter()
            .filter(|f| matches!(f.kind, FlowKind::Vulnerable { .. }))
            .count();
        assert!(sanitized > 0, "need sanitized flows");
        assert!(vulnerable > 0, "need vulnerable flows");
        for f in &c.flows {
            if f.kind == FlowKind::Sanitized {
                assert!(f.sanitizer.is_some());
                assert!(f.source.is_some());
                assert!(f.sink.is_some());
            }
        }
    }

    #[test]
    fn flows_reference_existing_files() {
        let c = small();
        for f in &c.flows {
            let proj = &c.projects[f.project];
            assert!(
                proj.files.iter().any(|sf| sf.path == f.file),
                "flow references missing file {}",
                f.file
            );
        }
    }

    #[test]
    fn vulnerable_flows_detected_by_oracle_spec() {
        // Sanity: analyze one generated vulnerable file with a full oracle
        // spec (all true roles) and check the violation appears.
        use seldon_taint::TaintAnalyzer;
        let u = Universe::new();
        let mut oracle = seldon_specs::TaintSpec::new();
        for a in u.apis() {
            if let Some(role) = a.role {
                oracle.add(a.rep, role);
            }
        }
        let c = small();
        let vuln = c
            .flows
            .iter()
            .find(|f| matches!(f.kind, FlowKind::Vulnerable { .. }))
            .expect("some vulnerable flow");
        let file = c.projects[vuln.project]
            .files
            .iter()
            .find(|sf| sf.path == vuln.file)
            .unwrap();
        let g = build_source(&file.content, FileId(0)).unwrap();
        let analyzer = TaintAnalyzer::new(&g, &oracle);
        let violations = analyzer.find_violations();
        assert!(
            violations.iter().any(|v| {
                u.apis()
                    .iter()
                    .any(|a| a.rep == vuln.sink.unwrap() && a.matches_rep(&v.sink_rep))
            }),
            "expected a violation for {} -> {:?} in:\n{}\ngot {violations:?}",
            vuln.handler,
            vuln.sink,
            file.content
        );
    }

    #[test]
    fn sanitized_flows_not_flagged_by_oracle() {
        use seldon_taint::TaintAnalyzer;
        let u = Universe::new();
        let mut oracle = seldon_specs::TaintSpec::new();
        for a in u.apis() {
            if let Some(role) = a.role {
                oracle.add(a.rep, role);
            }
        }
        let c = small();
        // Pick a sanitized flow in a file with no other vulnerable flows to
        // avoid cross-handler contamination of the check.
        for truth in c.flows.iter().filter(|f| f.kind == FlowKind::Sanitized) {
            let others_vulnerable = c.flows.iter().any(|f| {
                f.file == truth.file
                    && f.project == truth.project
                    && matches!(
                        f.kind,
                        FlowKind::Vulnerable { .. } | FlowKind::WrongParam
                    )
            });
            if others_vulnerable {
                continue;
            }
            let file = c.projects[truth.project]
                .files
                .iter()
                .find(|sf| sf.path == truth.file)
                .unwrap();
            let g = build_source(&file.content, FileId(0)).unwrap();
            let analyzer = TaintAnalyzer::new(&g, &oracle);
            let violations = analyzer.find_violations();
            assert!(
                violations.is_empty(),
                "sanitized file flagged: {violations:?}\n{}",
                file.content
            );
            return;
        }
    }

    fn small_js() -> Corpus {
        generate_corpus(
            &Universe::new(),
            &CorpusOptions { projects: 5, lang: Lang::Js, ..Default::default() },
        )
    }

    #[test]
    fn js_corpus_is_deterministic_and_distinct() {
        let a = small_js();
        let b = small_js();
        let fa: Vec<&str> = a.files().map(|(_, f)| f.content.as_str()).collect();
        let fb: Vec<&str> = b.files().map(|(_, f)| f.content.as_str()).collect();
        assert_eq!(fa, fb);
        assert!(a.files().all(|(_, f)| f.path.ends_with(".js")));
    }

    #[test]
    fn js_corpus_mirrors_python_structure() {
        // Same seed, different language: identical project/file/flow
        // structure, because the RNG draw sequence is shared.
        let py = small();
        let js = small_js();
        assert_eq!(py.file_count(), js.file_count());
        assert_eq!(py.flows.len(), js.flows.len());
        for (p, j) in py.flows.iter().zip(&js.flows) {
            assert_eq!(p.kind, j.kind);
            assert_eq!(p.source, j.source);
            assert_eq!(p.sink, j.sink);
            assert_eq!(p.handler, j.handler);
        }
    }

    #[test]
    fn every_js_file_parses_and_builds() {
        use seldon_jsfront::build_js_source;
        let c = small_js();
        assert!(c.file_count() >= 10);
        for (i, (_, f)) in c.files().enumerate() {
            let g = build_js_source(&f.content, FileId(i as u32))
                .unwrap_or_else(|e| panic!("file {} failed: {e}\n{}", f.path, f.content));
            assert!(g.event_count() > 0, "no events in {}", f.path);
        }
    }

    #[test]
    fn js_vulnerable_flows_detected_by_oracle_spec() {
        use seldon_jsfront::build_js_source;
        use seldon_taint::TaintAnalyzer;
        let u = Universe::new();
        let mut oracle = seldon_specs::TaintSpec::new();
        for a in u.apis() {
            if let Some(role) = a.role {
                oracle.add(a.rep, role);
            }
        }
        let c = small_js();
        let vuln = c
            .flows
            .iter()
            .find(|f| matches!(f.kind, FlowKind::Vulnerable { .. }))
            .expect("some vulnerable flow");
        let file = c.projects[vuln.project]
            .files
            .iter()
            .find(|sf| sf.path == vuln.file)
            .unwrap();
        let g = build_js_source(&file.content, FileId(0)).unwrap();
        let analyzer = TaintAnalyzer::new(&g, &oracle);
        let violations = analyzer.find_violations();
        assert!(
            violations.iter().any(|v| {
                u.apis()
                    .iter()
                    .any(|a| a.rep == vuln.sink.unwrap() && a.matches_rep(&v.sink_rep))
            }),
            "expected a violation for {} -> {:?} in:\n{}\ngot {violations:?}",
            vuln.handler,
            vuln.sink,
            file.content
        );
    }

    #[test]
    fn imports_come_before_code() {
        let c = small();
        let (_, f) = c.files().next().unwrap();
        let first_def = f.content.find("def ").unwrap_or(usize::MAX);
        for line in f.content.lines() {
            if line.starts_with("import ") || line.starts_with("from ") {
                let pos = f.content.find(line).unwrap();
                assert!(pos < first_def);
            }
        }
    }
}
