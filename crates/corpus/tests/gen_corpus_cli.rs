//! Integration test for the `gen_corpus` binary: the written tree must be
//! a valid on-disk corpus (parseable Python, seed spec, ground truth).

use std::process::Command;

#[test]
fn writes_parseable_corpus_tree() {
    let dir = std::env::temp_dir().join(format!("gen-corpus-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let out = Command::new(env!("CARGO_BIN_EXE_gen_corpus"))
        .arg(&dir)
        .arg("--projects")
        .arg("3")
        .arg("--seed")
        .arg("42")
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    // Seed spec parses in the App. B format.
    let seed_text =
        std::fs::read_to_string(dir.join("seed_spec.txt")).expect("seed spec written");
    let seed = seldon_specs::TaintSpec::parse(&seed_text).expect("seed parses");
    assert!(seed.role_count() > 0);

    // Ground truth has one line per flow with six tab-separated fields.
    let truth = std::fs::read_to_string(dir.join("ground_truth.txt")).expect("truth written");
    assert!(!truth.is_empty());
    for line in truth.lines() {
        assert_eq!(line.split('\t').count(), 6, "malformed truth line: {line}");
    }

    // Every written .py file parses.
    let mut py_files = 0usize;
    let mut stack = vec![dir.clone()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).expect("readable") {
            let path = entry.expect("entry").path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "py") {
                let src = std::fs::read_to_string(&path).unwrap();
                seldon_pyast::parse(&src)
                    .unwrap_or_else(|e| panic!("{} fails to parse: {e}", path.display()));
                py_files += 1;
            }
        }
    }
    assert!(py_files >= 3, "expected several files, found {py_files}");

    // Determinism: same seed produces the same tree.
    let dir2 = std::env::temp_dir().join(format!("gen-corpus-test2-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir2);
    let out = Command::new(env!("CARGO_BIN_EXE_gen_corpus"))
        .arg(&dir2)
        .arg("--projects")
        .arg("3")
        .arg("--seed")
        .arg("42")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let t1 = std::fs::read_to_string(dir.join("ground_truth.txt")).unwrap();
    let t2 = std::fs::read_to_string(dir2.join("ground_truth.txt")).unwrap();
    assert_eq!(t1, t2);

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}
