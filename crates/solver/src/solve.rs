//! Solving the relaxed constraint system (§4.4, eq. 9–11).
//!
//! The objective is
//!
//! ```text
//! min  Σᵢ max(Lᵢ − Rᵢ − C, 0)  +  λ · Σ x
//! s.t. 0 ≤ x ≤ 1,  pinned variables fixed
//! ```
//!
//! minimized with projected Adam. Pinned (seed) variables are restored to
//! their values after every step, which is exactly projection onto the
//! affine subspace of `C_known`.

use crate::adam::{Adam, AdamConfig};
use seldon_constraints::ConstraintSystem;
use seldon_telemetry::EpochSample;

/// Solver hyperparameters; defaults follow the paper (λ = 0.1).
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// L1 regularization strength λ.
    pub lambda: f64,
    /// Maximum Adam iterations.
    pub max_iters: usize,
    /// Stop when the objective improves less than this over a window.
    pub tol: f64,
    /// Adam configuration.
    pub adam: AdamConfig,
    /// Convergence-trace sampling stride: every `trace_stride`-th epoch
    /// (plus the final one) is recorded into [`Solution::trace`] as an
    /// [`EpochSample`]. `0` (the default) disables tracing entirely and
    /// keeps the Adam hot loop free of any telemetry work.
    pub trace_stride: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            lambda: 0.1,
            max_iters: 800,
            tol: 1e-6,
            adam: AdamConfig::default(),
            trace_stride: 0,
        }
    }
}

/// The result of solving a constraint system.
#[derive(Debug, Clone, Default)]
pub struct Solution {
    /// Score per variable, in `[0,1]`, indexed by `VarId`.
    pub scores: Vec<f64>,
    /// Final objective value.
    pub objective: f64,
    /// Final total constraint violation (the hinge part of the objective).
    pub violation: f64,
    /// Iterations actually run.
    pub iterations: usize,
    /// Objective value per iteration (for convergence plots).
    pub history: Vec<f64>,
    /// Whether the optimizer produced non-finite values. The solver
    /// restarts once with a reduced learning rate and sanitizes the final
    /// scores, so `scores` is finite and in `[0,1]` even when this is set.
    pub diverged: bool,
    /// Divergence-guard restarts taken (0 or 1). Surfaced so callers can
    /// report restarts instead of silently continuing on the rescaled run.
    pub restarts: usize,
    /// Learning rate of the run that produced `scores` — the configured
    /// rate, scaled by [`RESTART_LR_SCALE`] if the run restarted.
    pub final_lr: f64,
    /// Sampled convergence trace (empty when
    /// [`SolveOptions::trace_stride`] is 0); epochs strictly increase and
    /// the final epoch is always included. After a restart this traces the
    /// restarted run, consistent with `history`.
    pub trace: Vec<EpochSample>,
}

impl Solution {
    /// The score of variable `v`.
    pub fn score(&self, v: seldon_constraints::VarId) -> f64 {
        self.scores[v.index()]
    }
}

/// Computes the hinge violation and objective of `scores` under `sys`.
pub fn evaluate(sys: &ConstraintSystem, scores: &[f64], lambda: f64) -> (f64, f64) {
    let mut violation = 0.0;
    for c in &sys.constraints {
        let lhs: f64 = c.lhs.iter().map(|t| t.coeff * scores[t.var.index()]).sum();
        let rhs: f64 = c.rhs.iter().map(|t| t.coeff * scores[t.var.index()]).sum();
        let gap = lhs - rhs - sys.c;
        if gap > 0.0 {
            violation += gap;
        }
    }
    let l1: f64 = scores.iter().sum();
    (violation, violation + lambda * l1)
}

/// Everything one [`run_adam`] pass produces.
struct AdamRun {
    x: Vec<f64>,
    iterations: usize,
    history: Vec<f64>,
    trace: Vec<EpochSample>,
    diverged: bool,
}

/// One projected-Adam run; aborts early if the objective or any score
/// turns non-finite and reports it in [`AdamRun::diverged`].
///
/// With `opts.trace_stride > 0`, every stride-th epoch (and the final
/// epoch) is recorded as an [`EpochSample`]; with a stride of 0 the loop
/// does no telemetry work at all.
fn run_adam(sys: &ConstraintSystem, opts: &SolveOptions, lr_scale: f64) -> AdamRun {
    let n = sys.var_count();
    let mut x = vec![0.0f64; n];
    let pinned: Vec<(usize, f64)> =
        sys.pinned_vars().map(|(v, val)| (v.index(), val)).collect();
    let apply_pins = |x: &mut [f64]| {
        for &(i, val) in &pinned {
            x[i] = val;
        }
    };
    apply_pins(&mut x);

    let lr = opts.adam.lr * lr_scale;
    let adam_cfg = AdamConfig { lr, ..opts.adam.clone() };
    let mut adam = Adam::new(n, adam_cfg);
    let mut grad = vec![0.0f64; n];
    let mut history = Vec::with_capacity(opts.max_iters.min(4096));
    let stride = opts.trace_stride;
    let mut trace: Vec<EpochSample> = Vec::new();
    let mut last_sample: Option<EpochSample> = None;
    let mut best = f64::INFINITY;
    let mut stall = 0usize;
    let mut iterations = 0usize;
    let mut diverged = false;

    for iter in 0..opts.max_iters {
        iterations = iter + 1;
        // Gradient of hinge + L1.
        grad.iter_mut().for_each(|g| *g = opts.lambda);
        let mut violation = 0.0;
        let mut violated = 0usize;
        for c in &sys.constraints {
            let lhs: f64 = c.lhs.iter().map(|t| t.coeff * x[t.var.index()]).sum();
            let rhs: f64 = c.rhs.iter().map(|t| t.coeff * x[t.var.index()]).sum();
            let gap = lhs - rhs - sys.c;
            if gap > 0.0 {
                violation += gap;
                violated += 1;
                for t in &c.lhs {
                    grad[t.var.index()] += t.coeff;
                }
                for t in &c.rhs {
                    grad[t.var.index()] -= t.coeff;
                }
            }
        }
        let objective = violation + opts.lambda * x.iter().sum::<f64>();
        if stride != 0 {
            let sample = EpochSample {
                epoch: iter as u64,
                objective,
                hinge_loss: violation,
                violated: violated as u64,
                grad_norm: grad.iter().map(|g| g * g).sum::<f64>().sqrt(),
                lr,
            };
            if iter % stride == 0 {
                trace.push(sample);
            }
            last_sample = Some(sample);
        }
        if !objective.is_finite() {
            diverged = true;
            break;
        }
        history.push(objective);

        adam.step_projected(&mut x, &grad, 0.0, 1.0);
        apply_pins(&mut x);
        if x.iter().any(|s| !s.is_finite()) {
            diverged = true;
            break;
        }

        if objective + opts.tol < best {
            best = objective;
            stall = 0;
        } else {
            stall += 1;
            if stall >= 50 {
                break;
            }
        }
    }

    // The curve always ends at the epoch the loop actually stopped on
    // (early stall, divergence, or max_iters), not the last stride mark.
    if let Some(last) = last_sample {
        if trace.last().map(|t| t.epoch) != Some(last.epoch) {
            trace.push(last);
        }
    }

    AdamRun { x, iterations, history, trace, diverged }
}

/// Learning-rate scale of the single restart after a diverged run.
const RESTART_LR_SCALE: f64 = 0.25;

/// Minimizes the relaxed objective with projected Adam.
///
/// Numerically guarded: if the run produces non-finite scores or
/// objective, it restarts once with the learning rate scaled by
/// [`RESTART_LR_SCALE`], sanitizes whatever remains non-finite to `0`,
/// and sets [`Solution::diverged`]. Scores are always finite and in
/// `[0,1]` with pinned variables at their pinned values.
pub fn solve(sys: &ConstraintSystem, opts: &SolveOptions) -> Solution {
    let mut run = run_adam(sys, opts, 1.0);
    let diverged = run.diverged;
    let mut restarts = 0usize;
    let mut final_lr = opts.adam.lr;
    if diverged {
        run = run_adam(sys, opts, RESTART_LR_SCALE);
        restarts = 1;
        final_lr = opts.adam.lr * RESTART_LR_SCALE;
    }
    let AdamRun { mut x, iterations, history, trace, .. } = run;

    // Final sanitization: a diverged restart can still be non-finite (e.g.
    // NaN hyperparameters); downstream extraction must never see it.
    for s in &mut x {
        if !s.is_finite() {
            *s = 0.0;
        } else {
            *s = s.clamp(0.0, 1.0);
        }
    }
    for (v, val) in sys.pinned_vars() {
        x[v.index()] = val;
    }

    let (violation, objective) = evaluate(sys, &x, opts.lambda);
    Solution {
        scores: x,
        objective,
        violation,
        iterations,
        history,
        diverged,
        restarts,
        final_lr,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldon_constraints::{ConstraintSystem, FlowConstraint, Term};
    use seldon_specs::Role;

    /// Pinned src=1, snk=1 with a constraint src+snk ≤ san + C pushes the
    /// sanitizer score up to ≈ 2 − C.
    #[test]
    fn sanitizer_learned_from_pinned_endpoints() {
        let mut sys = ConstraintSystem::new(0.75);
        let s = sys.rep("src()");
        let m = sys.rep("san()");
        let t = sys.rep("snk()");
        let vsrc = sys.var(s, Role::Source);
        let vsan = sys.var(m, Role::Sanitizer);
        let vsnk = sys.var(t, Role::Sink);
        sys.pin(vsrc, 1.0);
        sys.pin(vsnk, 1.0);
        sys.add_constraint(FlowConstraint {
            lhs: vec![Term { var: vsrc, coeff: 1.0 }, Term { var: vsnk, coeff: 1.0 }],
            rhs: vec![Term { var: vsan, coeff: 1.0 }],
            ..Default::default()
        });
        let sol = solve(&sys, &SolveOptions::default());
        // src + snk = 2 ≤ san + 0.75 ⇒ san ≥ 1.25, clipped to 1... but λ
        // pulls down; the hinge (slope 1) dominates λ = 0.1, so san → 1.
        assert!(sol.score(vsan) > 0.9, "san = {}", sol.score(vsan));
        assert_eq!(sol.score(vsrc), 1.0);
        assert_eq!(sol.score(vsnk), 1.0);
    }

    /// Without any seed, all-zeros is optimal (the paper's Q6 extreme case).
    #[test]
    fn empty_seed_gives_zero_scores() {
        let mut sys = ConstraintSystem::new(0.75);
        let a = sys.rep("a()");
        let b = sys.rep("b()");
        let va = sys.var(a, Role::Source);
        let vb = sys.var(b, Role::Sink);
        sys.add_constraint(FlowConstraint {
            lhs: vec![Term { var: va, coeff: 1.0 }, Term { var: vb, coeff: 1.0 }],
            rhs: vec![],
            ..Default::default()
        });
        let sol = solve(&sys, &SolveOptions::default());
        assert!(sol.scores.iter().all(|&s| s < 1e-6), "{:?}", sol.scores);
        assert!(sol.violation < 1e-9);
    }

    /// Regularization suppresses variables not needed by any constraint.
    #[test]
    fn l1_pulls_free_variables_to_zero() {
        let mut sys = ConstraintSystem::new(0.75);
        let a = sys.rep("unused()");
        let v = sys.var(a, Role::Sanitizer);
        let sol = solve(&sys, &SolveOptions::default());
        assert!(sol.score(v) < 1e-6);
    }

    /// A chain src=1 with constraint src + snk ≤ C forces snk down (no
    /// gradient pressure up) — scores stay 0 and violation only as forced.
    #[test]
    fn infeasible_pins_leave_residual_violation() {
        let mut sys = ConstraintSystem::new(0.75);
        let a = sys.rep("a()");
        let b = sys.rep("b()");
        let va = sys.var(a, Role::Source);
        let vb = sys.var(b, Role::Sink);
        sys.pin(va, 1.0);
        sys.pin(vb, 1.0);
        // lhs = 2, rhs = C = 0.75: irreducible violation of 1.25.
        sys.add_constraint(FlowConstraint {
            lhs: vec![Term { var: va, coeff: 1.0 }, Term { var: vb, coeff: 1.0 }],
            rhs: vec![],
            ..Default::default()
        });
        let sol = solve(&sys, &SolveOptions::default());
        assert!((sol.violation - 1.25).abs() < 1e-9, "violation {}", sol.violation);
    }

    #[test]
    fn objective_history_is_recorded() {
        let sys = ConstraintSystem::new(0.75);
        let sol = solve(&sys, &SolveOptions { max_iters: 10, ..Default::default() });
        assert!(!sol.history.is_empty());
        assert!(sol.iterations <= 10 + 50);
    }

    /// Backoff averages: pinning a shared backoff variable raises the score
    /// of every event averaging over it.
    #[test]
    fn shared_backoff_correlation() {
        let mut sys = ConstraintSystem::new(0.75);
        let shared = sys.rep("x.save()");
        let spec1 = sys.rep("media(param f).save()");
        let vsh = sys.var(shared, Role::Sink);
        let vs1 = sys.var(spec1, Role::Sink);
        let src = sys.rep("request.args.get()");
        let vsrc = sys.var(src, Role::Source);
        sys.pin(vsrc, 1.0);
        // src + snk_avg ≤ C with snk averaged over {spec1, shared}:
        // wait — constraint must push snk UP: use a 4c-style constraint
        // src + snk ≤ san + C is not it; instead model 4b:
        // src + san ≤ snk + C with a pinned sanitizer.
        let san = sys.rep("clean()");
        let vsan = sys.var(san, Role::Sanitizer);
        sys.pin(vsan, 1.0);
        sys.add_constraint(FlowConstraint {
            lhs: vec![Term { var: vsrc, coeff: 1.0 }, Term { var: vsan, coeff: 1.0 }],
            rhs: vec![Term { var: vs1, coeff: 0.5 }, Term { var: vsh, coeff: 0.5 }],
            ..Default::default()
        });
        let sol = solve(&sys, &SolveOptions::default());
        // 2 ≤ 0.5(vs1 + vsh) + 0.75 ⇒ vs1 + vsh ≥ 2.5 ⇒ both ≈ 1.
        assert!(sol.score(vs1) > 0.8, "vs1 = {}", sol.score(vs1));
        assert!(sol.score(vsh) > 0.8, "vsh = {}", sol.score(vsh));
    }

    /// NaN hyperparameters poison every iterate: the guard must detect it,
    /// restart, and still hand back finite sanitized scores.
    #[test]
    fn nan_lambda_is_detected_and_sanitized() {
        let mut sys = ConstraintSystem::new(0.75);
        let a = sys.rep("a()");
        let b = sys.rep("b()");
        let va = sys.var(a, Role::Source);
        let vb = sys.var(b, Role::Sink);
        sys.pin(va, 1.0);
        sys.add_constraint(FlowConstraint {
            lhs: vec![Term { var: va, coeff: 1.0 }],
            rhs: vec![Term { var: vb, coeff: 1.0 }],
            ..Default::default()
        });
        let sol = solve(&sys, &SolveOptions { lambda: f64::NAN, ..Default::default() });
        assert!(sol.diverged, "NaN λ must be reported as divergence");
        assert!(sol.scores.iter().all(|s| s.is_finite() && (0.0..=1.0).contains(s)));
        assert_eq!(sol.score(va), 1.0, "pins survive sanitization");
    }

    #[test]
    fn healthy_runs_do_not_report_divergence() {
        let mut sys = ConstraintSystem::new(0.75);
        let a = sys.rep("a()");
        let v = sys.var(a, Role::Source);
        sys.pin(v, 1.0);
        let sol = solve(&sys, &SolveOptions::default());
        assert!(!sol.diverged);
        assert_eq!(sol.restarts, 0);
        assert_eq!(sol.final_lr, SolveOptions::default().adam.lr);
        assert!(sol.trace.is_empty(), "stride 0 records no trace");
    }

    /// A solvable system traced at stride 7: epochs strictly increase,
    /// start at 0, and end at the last epoch actually run.
    #[test]
    fn trace_sampling_covers_first_and_final_epoch() {
        let mut sys = ConstraintSystem::new(0.75);
        let s = sys.rep("src()");
        let m = sys.rep("san()");
        let vsrc = sys.var(s, Role::Source);
        let vsan = sys.var(m, Role::Sanitizer);
        sys.pin(vsrc, 1.0);
        sys.add_constraint(FlowConstraint {
            lhs: vec![Term { var: vsrc, coeff: 1.0 }],
            rhs: vec![Term { var: vsan, coeff: 1.0 }],
            ..Default::default()
        });
        let opts = SolveOptions { trace_stride: 7, ..Default::default() };
        let sol = solve(&sys, &opts);
        assert!(!sol.trace.is_empty());
        assert_eq!(sol.trace[0].epoch, 0);
        assert!(sol.trace.windows(2).all(|w| w[0].epoch < w[1].epoch));
        assert_eq!(sol.trace.last().unwrap().epoch as usize, sol.iterations - 1);
        for e in &sol.trace {
            assert!(e.objective.is_finite());
            assert!(e.hinge_loss >= 0.0);
            assert!(e.grad_norm.is_finite() && e.grad_norm >= 0.0);
            assert_eq!(e.lr, opts.adam.lr);
        }
        // Interior samples land on stride marks.
        for e in &sol.trace[..sol.trace.len() - 1] {
            assert_eq!(e.epoch % 7, 0, "epoch {}", e.epoch);
        }
        // The objective column matches the untraced history exactly.
        for e in &sol.trace {
            assert_eq!(e.objective, sol.history[e.epoch as usize]);
        }
    }

    #[test]
    fn restart_is_surfaced_with_scaled_lr() {
        let mut sys = ConstraintSystem::new(0.75);
        let a = sys.rep("a()");
        let va = sys.var(a, Role::Source);
        sys.pin(va, 1.0);
        let opts =
            SolveOptions { lambda: f64::NAN, trace_stride: 1, ..Default::default() };
        let sol = solve(&sys, &opts);
        assert!(sol.diverged);
        assert_eq!(sol.restarts, 1, "restart count surfaced");
        assert_eq!(sol.final_lr, opts.adam.lr * RESTART_LR_SCALE);
        assert!(!sol.trace.is_empty(), "diverged runs still trace their epochs");
    }

    #[test]
    fn evaluate_matches_solution_fields() {
        let mut sys = ConstraintSystem::new(0.75);
        let a = sys.rep("a()");
        let v = sys.var(a, Role::Source);
        sys.pin(v, 1.0);
        let sol = solve(&sys, &SolveOptions::default());
        let (viol, obj) = evaluate(&sys, &sol.scores, 0.1);
        assert!((viol - sol.violation).abs() < 1e-12);
        assert!((obj - sol.objective).abs() < 1e-12);
    }
}
