//! Solving the relaxed constraint system (§4.4, eq. 9–11).
//!
//! The objective is
//!
//! ```text
//! min  Σᵢ max(Lᵢ − Rᵢ − C, 0)  +  λ · Σ x
//! s.t. 0 ≤ x ≤ 1,  pinned variables fixed
//! ```
//!
//! minimized with projected Adam. Pinned (seed) variables are restored to
//! their values after every step, which is exactly projection onto the
//! affine subspace of `C_known`.
//!
//! The hot loop iterates a [`CompiledSystem`] — the CSR lowering in
//! [`crate::compiled`] — and parallelizes each epoch across
//! [`SolveOptions::threads`] scoped workers. The lane/chunk partitions the
//! workers split on depend only on the compiled system, so scores are
//! byte-identical for `threads = 1` and `threads = N`.
//!
//! Instead of always burning the full `max_iters` budget, the loop can
//! exit on a deterministic objective plateau ([`EarlyStop`], on by
//! default): relative-improvement checks at fixed [`EARLY_STOP_STRIDE`]
//! epoch boundaries, on the thread-invariant objective series, so the
//! stop epoch — recorded as [`Solution::stop`] — is itself identical at
//! any thread count.

use crate::adam::{step_element, AdamConfig};
use crate::compiled::{chunked_sum, CompiledSystem};
use seldon_constraints::ConstraintSystem;
use seldon_telemetry::EpochSample;

/// Epoch interval of the plateau-detector checks: every
/// `EARLY_STOP_STRIDE`-th epoch, matching the default convergence-trace
/// stride. The check reads only the per-epoch objective series — which is
/// already bitwise thread-invariant — at epochs fixed by this constant, so
/// the stop decision is identical for any thread count *and* for any
/// [`SolveOptions::trace_stride`] (including 0: tracing off never changes
/// where the solver stops).
pub const EARLY_STOP_STRIDE: usize = 10;

/// Consecutive no-improvement epochs (beyond [`SolveOptions::tol`],
/// absolute) after which the stall exit fires. This is the legacy
/// convergence exit and always runs; when [`SolveOptions::early_stop`] is
/// set it is additionally gated by [`EarlyStop::min_iters`] so every exit
/// honors the detector's floor.
pub const STALL_WINDOW: usize = 50;

/// Convergence-based early exit: a deterministic plateau detector on the
/// objective series, checked only at [`EARLY_STOP_STRIDE`] boundaries.
///
/// The best objective so far is tracked every epoch (the per-epoch
/// objective is already bitwise thread-invariant, so this adds no thread
/// sensitivity); an epoch improves the best only by beating it by more
/// than `rel_tol`, scaled by `max(|best|, 1)`. At each check epoch, no
/// new best since the previous check counts as one strike; after
/// `patience` consecutive strikes (and at least `min_iters` epochs), the
/// solver stops with [`StopReason::Plateau`] instead of burning the rest
/// of `max_iters`. Best-so-far tracking — rather than consecutive
/// per-check deltas — keeps the detector robust to the small oscillations
/// Adam's late epochs produce around a settled objective.
///
/// The detector layers on top of the always-active [`STALL_WINDOW`]
/// stall exit rather than replacing it: the stall window handles small
/// systems (where the absolute tolerance is meaningful and the legacy
/// stop epoch is preserved bit-for-bit), while the relative-tolerance
/// plateau check is what stops large-corpus runs whose objective keeps
/// shaving more than an absolute 1e-6 per epoch forever. `min_iters`
/// gates both exits whenever the detector is enabled.
#[derive(Debug, Clone, PartialEq)]
pub struct EarlyStop {
    /// Consecutive checks without a new best required before stopping.
    pub patience: usize,
    /// Relative improvement on the best objective below which an epoch
    /// does not count as progress (scaled by `max(|best|, 1)`).
    pub rel_tol: f64,
    /// Epochs that must complete before the detector may stop the run.
    pub min_iters: usize,
}

impl Default for EarlyStop {
    fn default() -> Self {
        // patience × EARLY_STOP_STRIDE = STALL_WINDOW epochs without a
        // new best — the same no-improvement span the stall exit uses, so
        // on trajectories where only the scale-aware relative check can
        // see the plateau, the detector stops in the same settled region
        // the stall window would have found under a finer tolerance.
        EarlyStop { patience: 5, rel_tol: 1e-6, min_iters: 50 }
    }
}

impl EarlyStop {
    /// Rejects configurations the detector cannot evaluate.
    pub fn validate(&self) -> Result<(), String> {
        if self.patience == 0 {
            return Err("early-stop patience must be ≥ 1".to_string());
        }
        if !self.rel_tol.is_finite() || self.rel_tol < 0.0 {
            return Err(format!("early-stop rel_tol must be finite and ≥ 0, got {}", self.rel_tol));
        }
        Ok(())
    }
}

/// Why the solver's epoch loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StopReason {
    /// The full `max_iters` budget ran.
    #[default]
    MaxIters,
    /// The absolute-tolerance stall window fired (no improvement beyond
    /// [`SolveOptions::tol`] for [`STALL_WINDOW`] consecutive epochs).
    Stall,
    /// The [`EarlyStop`] plateau detector fired at a check boundary.
    Plateau,
    /// The run produced a non-finite objective or scores; for a restarted
    /// solve this reports the final (restarted) run's reason.
    Diverged,
    /// Options failed [`SolveOptions::validate`]; no epoch ran.
    InvalidOptions,
}

impl StopReason {
    /// Stable string form (manifest / checkpoint serialization).
    pub fn as_str(self) -> &'static str {
        match self {
            StopReason::MaxIters => "max_iters",
            StopReason::Stall => "stall",
            StopReason::Plateau => "plateau",
            StopReason::Diverged => "diverged",
            StopReason::InvalidOptions => "invalid_options",
        }
    }

    /// Small integer code for numeric metric gauges, in declaration order.
    pub fn code(self) -> u8 {
        match self {
            StopReason::MaxIters => 0,
            StopReason::Stall => 1,
            StopReason::Plateau => 2,
            StopReason::Diverged => 3,
            StopReason::InvalidOptions => 4,
        }
    }

    /// Inverse of [`StopReason::as_str`]; `None` on unknown input.
    pub fn parse(s: &str) -> Option<StopReason> {
        match s {
            "max_iters" => Some(StopReason::MaxIters),
            "stall" => Some(StopReason::Stall),
            "plateau" => Some(StopReason::Plateau),
            "diverged" => Some(StopReason::Diverged),
            "invalid_options" => Some(StopReason::InvalidOptions),
            _ => None,
        }
    }
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Solver hyperparameters; defaults follow the paper (λ = 0.1).
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// L1 regularization strength λ.
    pub lambda: f64,
    /// Maximum Adam iterations.
    pub max_iters: usize,
    /// Stall exit tolerance: stop after [`STALL_WINDOW`] consecutive
    /// epochs whose objective improves less than this absolute amount.
    /// Always active; with `early_stop` set the exit is additionally
    /// gated by [`EarlyStop::min_iters`].
    pub tol: f64,
    /// Adam configuration.
    pub adam: AdamConfig,
    /// Convergence-based early exit layered on top of the stall window.
    /// The stall window is absolute-tolerance and corpus-scale blind: on
    /// large corpora the objective is big enough that it keeps improving
    /// by more than `tol` forever, so runs burn the whole `max_iters`
    /// budget. The plateau detector's *relative* tolerance is what stops
    /// those runs early. `None` reproduces the pre-early-stop behavior
    /// exactly; on by default.
    pub early_stop: Option<EarlyStop>,
    /// Convergence-trace sampling stride: every `trace_stride`-th epoch
    /// (plus the final one) is recorded into [`Solution::trace`] as an
    /// [`EpochSample`]. `0` (the default) disables tracing entirely and
    /// keeps the Adam hot loop free of any telemetry work.
    pub trace_stride: usize,
    /// Worker threads per epoch (clamped to ≥ 1). The gap pass splits
    /// over gradient lanes and the Adam update over fixed variable
    /// chunks; both partitions are functions of the compiled system
    /// alone, so scores are byte-identical for any thread count.
    pub threads: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            lambda: 0.1,
            max_iters: 800,
            tol: 1e-6,
            adam: AdamConfig::default(),
            early_stop: Some(EarlyStop::default()),
            trace_stride: 0,
            threads: 1,
        }
    }
}

impl SolveOptions {
    /// Rejects hyperparameters that would poison every iterate (NaN λ, a
    /// bad Adam configuration — see [`AdamConfig::validate`]) so
    /// [`solve`] can short-circuit to a diverged [`Solution`] instead of
    /// burning `max_iters` twice.
    pub fn validate(&self) -> Result<(), String> {
        if !self.lambda.is_finite() {
            return Err(format!("lambda must be finite, got {}", self.lambda));
        }
        if let Some(es) = &self.early_stop {
            es.validate()?;
        }
        self.adam.validate()
    }
}

/// The result of solving a constraint system.
#[derive(Debug, Clone, Default)]
pub struct Solution {
    /// Score per variable, in `[0,1]`, indexed by `VarId`.
    pub scores: Vec<f64>,
    /// Final objective value.
    pub objective: f64,
    /// Final total constraint violation (the hinge part of the objective).
    pub violation: f64,
    /// Iterations actually run.
    pub iterations: usize,
    /// Objective value per iteration (for convergence plots).
    pub history: Vec<f64>,
    /// Whether the optimizer produced non-finite values (or the options
    /// failed [`SolveOptions::validate`] and the run was short-circuited).
    /// The solver restarts once with a reduced learning rate and
    /// sanitizes the final scores, so `scores` is finite and in `[0,1]`
    /// even when this is set.
    pub diverged: bool,
    /// Divergence-guard restarts taken (0 or 1). Surfaced so callers can
    /// report restarts instead of silently continuing on the rescaled run.
    pub restarts: usize,
    /// Learning rate of the run that produced `scores` — the configured
    /// rate, scaled by [`RESTART_LR_SCALE`] if the run restarted.
    pub final_lr: f64,
    /// Why the epoch loop ended (for the restarted run, if any).
    pub stop: StopReason,
    /// Epochs *not* run against the `max_iters` budget
    /// (`max_iters − iterations`); 0 for diverged or short-circuited runs,
    /// where the savings were not earned by convergence.
    pub epochs_saved: usize,
    /// Sampled convergence trace (empty when
    /// [`SolveOptions::trace_stride`] is 0); epochs strictly increase and
    /// the final epoch is always included. After a restart this traces the
    /// restarted run, consistent with `history`.
    pub trace: Vec<EpochSample>,
}

impl Solution {
    /// The score of variable `v`.
    pub fn score(&self, v: seldon_constraints::VarId) -> f64 {
        self.scores[v.index()]
    }
}

/// Computes the hinge violation and objective of `scores` under `sys`
/// through the compiled kernel — the same code path the solver iterates,
/// so the two can never drift.
pub fn evaluate(sys: &ConstraintSystem, scores: &[f64], lambda: f64) -> (f64, f64) {
    CompiledSystem::compile(sys).objective(scores, lambda)
}

/// Everything one [`run_adam`] pass produces.
struct AdamRun {
    x: Vec<f64>,
    iterations: usize,
    history: Vec<f64>,
    trace: Vec<EpochSample>,
    diverged: bool,
    stop: StopReason,
}

/// Applies one Adam step to a contiguous block of variables starting at
/// `start`, reading gradients from the per-lane hinge partials in `bufs`
/// (reduced in fixed lane order) and writing per-fixed-chunk squared
/// gradient norms into `norms`. Element-wise, so any worker partition
/// along chunk boundaries produces bit-identical results.
#[allow(clippy::too_many_arguments)]
fn update_block(
    cs: &CompiledSystem,
    cfg: &AdamConfig,
    lambda: f64,
    b1t: f64,
    b2t: f64,
    bufs: &[Vec<f64>],
    start: usize,
    xs: &mut [f64],
    ms: &mut [f64],
    vs: &mut [f64],
    norms: &mut [f64],
    want_norm: bool,
) {
    let chunk = cs.var_chunk();
    for (ci, ((xc, mc), vc)) in
        xs.chunks_mut(chunk).zip(ms.chunks_mut(chunk)).zip(vs.chunks_mut(chunk)).enumerate()
    {
        let base = start + ci * chunk;
        let mut sq = 0.0;
        for (off, ((xi, mi), vi)) in
            xc.iter_mut().zip(mc.iter_mut()).zip(vc.iter_mut()).enumerate()
        {
            let g = cs.grad_var(base + off, lambda, bufs);
            if want_norm {
                sq += g * g;
            }
            step_element(cfg, b1t, b2t, mi, vi, xi, g, 0.0, 1.0);
        }
        if want_norm {
            norms[ci] = sq;
        }
    }
}

/// One epoch's Adam update + box projection, chunked across up to
/// `threads` scoped workers along the fixed variable partition.
#[allow(clippy::too_many_arguments)]
fn update_pass(
    cs: &CompiledSystem,
    cfg: &AdamConfig,
    lambda: f64,
    step: u64,
    threads: usize,
    bufs: &[Vec<f64>],
    x: &mut [f64],
    m: &mut [f64],
    v: &mut [f64],
    norms: &mut [f64],
    want_norm: bool,
) {
    let b1t = 1.0 - cfg.beta1.powi(step as i32);
    let b2t = 1.0 - cfg.beta2.powi(step as i32);
    let n_chunks = cs.var_chunk_count();
    let workers = threads.max(1).min(n_chunks.max(1));
    if workers <= 1 {
        update_block(cs, cfg, lambda, b1t, b2t, bufs, 0, x, m, v, norms, want_norm);
        return;
    }
    let per = n_chunks.div_ceil(workers);
    let stride = per * cs.var_chunk();
    std::thread::scope(|s| {
        for (w, (((xs, ms), vs), ns)) in x
            .chunks_mut(stride)
            .zip(m.chunks_mut(stride))
            .zip(v.chunks_mut(stride))
            .zip(norms.chunks_mut(per))
            .enumerate()
        {
            s.spawn(move || {
                update_block(cs, cfg, lambda, b1t, b2t, bufs, w * stride, xs, ms, vs, ns, want_norm);
            });
        }
    });
}

/// The gradient norm alone, for tracing epochs that never reach the
/// update phase (non-finite objective).
fn grad_norm_only(cs: &CompiledSystem, lambda: f64, bufs: &[Vec<f64>]) -> f64 {
    let mut sq = 0.0;
    for i in 0..cs.var_count() {
        let g = cs.grad_var(i, lambda, bufs);
        sq += g * g;
    }
    sq.sqrt()
}

/// One projected-Adam run over the compiled system; aborts early if the
/// objective or any score turns non-finite and reports it in
/// [`AdamRun::diverged`].
///
/// `init` seeds the starting iterate (warm start); `None` starts from
/// zeros, the classic cold start. Warm values are sanitized into `[0,1]`
/// before the first epoch and pins are re-applied either way, so every
/// iterate the loop sees is feasible.
///
/// With `opts.trace_stride > 0`, every stride-th epoch (and the final
/// epoch) is recorded as an [`EpochSample`]; with a stride of 0 the loop
/// does no telemetry work at all.
fn run_adam(
    cs: &CompiledSystem,
    opts: &SolveOptions,
    lr_scale: f64,
    init: Option<&[f64]>,
) -> AdamRun {
    let n = cs.var_count();
    let threads = opts.threads.max(1);
    let mut x = match init {
        Some(seed) if seed.len() == n => {
            seed.iter().map(|&s| if s.is_finite() { s.clamp(0.0, 1.0) } else { 0.0 }).collect()
        }
        _ => vec![0.0f64; n],
    };
    cs.apply_pins(&mut x);

    let lr = opts.adam.lr * lr_scale;
    let cfg = AdamConfig { lr, ..opts.adam.clone() };
    let mut m = vec![0.0f64; n];
    let mut v = vec![0.0f64; n];
    let mut bufs = cs.new_lane_buffers();
    let mut lane_stats = vec![(0.0f64, 0usize); cs.lane_count()];
    let mut norm_parts = vec![0.0f64; cs.var_chunk_count()];
    let mut history = Vec::with_capacity(opts.max_iters.min(4096));
    let stride = opts.trace_stride;
    let mut trace: Vec<EpochSample> = Vec::new();
    let mut last_sample: Option<EpochSample> = None;
    let mut best = f64::INFINITY;
    let mut stall = 0usize;
    let mut iterations = 0usize;
    let mut diverged = false;
    let mut step = 0u64;
    let mut stop = StopReason::MaxIters;
    // Plateau-detector state: the best objective seen so far, whether it
    // improved since the previous check, and the consecutive checks
    // without improvement. Decisions run only at `EARLY_STOP_STRIDE`
    // boundaries, on the thread-invariant objective series, so the stop
    // epoch is identical at any thread count.
    let mut check_best = f64::INFINITY;
    let mut improved = false;
    let mut since_best = 0usize;

    for iter in 0..opts.max_iters {
        iterations = iter + 1;
        cs.gap_pass(&x, threads, &mut bufs, &mut lane_stats);
        let mut violation = 0.0;
        let mut violated = 0usize;
        for &(lane_violation, lane_violated) in &lane_stats {
            violation += lane_violation;
            violated += lane_violated;
        }
        let objective = violation + opts.lambda * chunked_sum(&x);
        if !objective.is_finite() {
            if stride != 0 {
                let sample = EpochSample {
                    epoch: iter as u64,
                    objective,
                    hinge_loss: violation,
                    violated: violated as u64,
                    grad_norm: grad_norm_only(cs, opts.lambda, &bufs),
                    lr,
                };
                if iter % stride == 0 {
                    trace.push(sample);
                }
                last_sample = Some(sample);
            }
            diverged = true;
            stop = StopReason::Diverged;
            break;
        }
        history.push(objective);

        step += 1;
        update_pass(
            cs,
            &cfg,
            opts.lambda,
            step,
            threads,
            &bufs,
            &mut x,
            &mut m,
            &mut v,
            &mut norm_parts,
            stride != 0,
        );
        cs.apply_pins(&mut x);

        if stride != 0 {
            let sample = EpochSample {
                epoch: iter as u64,
                objective,
                hinge_loss: violation,
                violated: violated as u64,
                grad_norm: norm_parts.iter().sum::<f64>().sqrt(),
                lr,
            };
            if iter % stride == 0 {
                trace.push(sample);
            }
            last_sample = Some(sample);
        }

        if x.iter().any(|s| !s.is_finite()) {
            diverged = true;
            stop = StopReason::Diverged;
            break;
        }

        // Convergence exits. The legacy stall window (absolute `tol`, 50
        // consecutive epochs without improvement) always runs — with
        // early-stop enabled it is additionally gated by `min_iters`, so
        // the detector's floor is honored by every exit. The plateau
        // detector layers a *relative*-tolerance exit on top: on large
        // corpora the objective is O(10³) and keeps shaving more than the
        // absolute 1e-6 forever, so the stall window never fires and the
        // run burns the whole `max_iters` budget; a scale-aware threshold
        // is what actually stops those runs early. On small systems the
        // stall window typically fires first, so enabling early-stop
        // changes nothing there — outputs stay bit-for-bit identical.
        if objective + opts.tol < best {
            best = objective;
            stall = 0;
        } else {
            stall += 1;
        }
        match &opts.early_stop {
            Some(es) => {
                if stall >= STALL_WINDOW && iterations >= es.min_iters {
                    stop = StopReason::Stall;
                    break;
                }
                // Best-so-far tracking runs every epoch — the objective
                // series is already bitwise thread-invariant, so this adds
                // no thread sensitivity — but the stop *decision* happens
                // only at fixed stride boundaries: a check without a new
                // best since the previous check is a strike, `patience`
                // consecutive strikes end the run. Best-so-far (rather
                // than consecutive per-check deltas) keeps the detector
                // robust to the small oscillations Adam's late epochs
                // produce; `min_iters` gates the stop itself, never the
                // strike bookkeeping.
                if !check_best.is_finite()
                    || objective < check_best - es.rel_tol * check_best.abs().max(1.0)
                {
                    check_best = objective;
                    improved = true;
                }
                if iter % EARLY_STOP_STRIDE == 0 {
                    if improved {
                        since_best = 0;
                        improved = false;
                    } else {
                        since_best += 1;
                    }
                    if since_best >= es.patience && iterations >= es.min_iters {
                        stop = StopReason::Plateau;
                        break;
                    }
                }
            }
            None => {
                if stall >= STALL_WINDOW {
                    stop = StopReason::Stall;
                    break;
                }
            }
        }
    }

    // The curve always ends at the epoch the loop actually stopped on
    // (early stall, divergence, or max_iters), not the last stride mark.
    if let Some(last) = last_sample {
        if trace.last().map(|t| t.epoch) != Some(last.epoch) {
            trace.push(last);
        }
    }

    AdamRun { x, iterations, history, trace, diverged, stop }
}

/// Learning-rate scale of the single restart after a diverged run.
const RESTART_LR_SCALE: f64 = 0.25;

/// Minimizes the relaxed objective with projected Adam.
///
/// Compiles `sys` into a [`CompiledSystem`] and delegates to
/// [`solve_compiled`]; callers iterating the same system repeatedly can
/// compile once and reuse it.
pub fn solve(sys: &ConstraintSystem, opts: &SolveOptions) -> Solution {
    solve_compiled(&CompiledSystem::compile(sys), opts)
}

/// Minimizes the relaxed objective of a pre-compiled system.
///
/// Numerically guarded twice over: options failing
/// [`SolveOptions::validate`] short-circuit to a diverged solution with
/// zeroed (pinned) scores before any epoch runs, and a run that produces
/// non-finite scores or objective restarts once with the learning rate
/// scaled by [`RESTART_LR_SCALE`], sanitizes whatever remains non-finite
/// to `0`, and sets [`Solution::diverged`]. Scores are always finite and
/// in `[0,1]` with pinned variables at their pinned values.
pub fn solve_compiled(cs: &CompiledSystem, opts: &SolveOptions) -> Solution {
    solve_compiled_from(cs, opts, None)
}

/// Like [`solve_compiled`] but warm-started: the first iterate is `init`
/// (sanitized into `[0,1]`, pins re-applied) instead of zeros.
///
/// A warm start changes only where the trajectory *begins* — the epoch
/// loop, both convergence exits, the divergence guard, and the final
/// sanitization are byte-for-byte the code the cold path runs, so a warm
/// solve is exactly as thread-invariant as a cold one. A diverged warm
/// run restarts from the *same* warm iterate at the reduced learning
/// rate. An `init` of the wrong length is ignored (cold start) rather
/// than guessed at.
///
/// Note warm and cold solves of the same system converge to the same
/// optimum *region* but not to bit-identical scores: callers that
/// advertise byte-identical downstream output (the serve daemon's
/// warm-start contract) must guard extraction with a margin check and
/// fall back to [`solve_compiled`] when a decision is too close to call.
pub fn solve_compiled_warm(
    cs: &CompiledSystem,
    opts: &SolveOptions,
    init: &[f64],
) -> Solution {
    solve_compiled_from(cs, opts, Some(init))
}

fn solve_compiled_from(
    cs: &CompiledSystem,
    opts: &SolveOptions,
    init: Option<&[f64]>,
) -> Solution {
    if opts.validate().is_err() {
        let mut x = vec![0.0f64; cs.var_count()];
        cs.apply_pins(&mut x);
        let (violation, objective) = cs.objective(&x, opts.lambda);
        return Solution {
            scores: x,
            objective,
            violation,
            iterations: 0,
            history: Vec::new(),
            diverged: true,
            restarts: 0,
            final_lr: opts.adam.lr,
            stop: StopReason::InvalidOptions,
            epochs_saved: 0,
            trace: Vec::new(),
        };
    }

    let mut run = run_adam(cs, opts, 1.0, init);
    let diverged = run.diverged;
    let mut restarts = 0usize;
    let mut final_lr = opts.adam.lr;
    if diverged {
        run = run_adam(cs, opts, RESTART_LR_SCALE, init);
        restarts = 1;
        final_lr = opts.adam.lr * RESTART_LR_SCALE;
    }
    let AdamRun { mut x, iterations, history, trace, stop, .. } = run;
    // Epochs saved are only claimed for runs that converged on their own;
    // a diverged run's short iteration count is a failure, not a saving.
    let epochs_saved =
        if diverged { 0 } else { opts.max_iters.saturating_sub(iterations) };

    // Final sanitization: a diverged restart can still be non-finite;
    // downstream extraction must never see it.
    for s in &mut x {
        if !s.is_finite() {
            *s = 0.0;
        } else {
            *s = s.clamp(0.0, 1.0);
        }
    }
    cs.apply_pins(&mut x);

    let (violation, objective) = cs.objective(&x, opts.lambda);
    Solution {
        scores: x,
        objective,
        violation,
        iterations,
        history,
        diverged,
        restarts,
        final_lr,
        stop,
        epochs_saved,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldon_constraints::{ConstraintSystem, FlowConstraint, Term};
    use seldon_specs::Role;

    /// Pinned src=1, snk=1 with a constraint src+snk ≤ san + C pushes the
    /// sanitizer score up to ≈ 2 − C.
    #[test]
    fn sanitizer_learned_from_pinned_endpoints() {
        let mut sys = ConstraintSystem::new(0.75);
        let s = sys.rep("src()");
        let m = sys.rep("san()");
        let t = sys.rep("snk()");
        let vsrc = sys.var(s, Role::Source);
        let vsan = sys.var(m, Role::Sanitizer);
        let vsnk = sys.var(t, Role::Sink);
        sys.pin(vsrc, 1.0);
        sys.pin(vsnk, 1.0);
        sys.add_constraint(FlowConstraint {
            lhs: vec![Term { var: vsrc, coeff: 1.0 }, Term { var: vsnk, coeff: 1.0 }],
            rhs: vec![Term { var: vsan, coeff: 1.0 }],
            ..Default::default()
        });
        let sol = solve(&sys, &SolveOptions::default());
        // src + snk = 2 ≤ san + 0.75 ⇒ san ≥ 1.25, clipped to 1... but λ
        // pulls down; the hinge (slope 1) dominates λ = 0.1, so san → 1.
        assert!(sol.score(vsan) > 0.9, "san = {}", sol.score(vsan));
        assert_eq!(sol.score(vsrc), 1.0);
        assert_eq!(sol.score(vsnk), 1.0);
    }

    /// Without any seed, all-zeros is optimal (the paper's Q6 extreme case).
    #[test]
    fn empty_seed_gives_zero_scores() {
        let mut sys = ConstraintSystem::new(0.75);
        let a = sys.rep("a()");
        let b = sys.rep("b()");
        let va = sys.var(a, Role::Source);
        let vb = sys.var(b, Role::Sink);
        sys.add_constraint(FlowConstraint {
            lhs: vec![Term { var: va, coeff: 1.0 }, Term { var: vb, coeff: 1.0 }],
            rhs: vec![],
            ..Default::default()
        });
        let sol = solve(&sys, &SolveOptions::default());
        assert!(sol.scores.iter().all(|&s| s < 1e-6), "{:?}", sol.scores);
        assert!(sol.violation < 1e-9);
    }

    /// Regularization suppresses variables not needed by any constraint.
    #[test]
    fn l1_pulls_free_variables_to_zero() {
        let mut sys = ConstraintSystem::new(0.75);
        let a = sys.rep("unused()");
        let v = sys.var(a, Role::Sanitizer);
        let sol = solve(&sys, &SolveOptions::default());
        assert!(sol.score(v) < 1e-6);
    }

    /// A chain src=1 with constraint src + snk ≤ C forces snk down (no
    /// gradient pressure up) — scores stay 0 and violation only as forced.
    #[test]
    fn infeasible_pins_leave_residual_violation() {
        let mut sys = ConstraintSystem::new(0.75);
        let a = sys.rep("a()");
        let b = sys.rep("b()");
        let va = sys.var(a, Role::Source);
        let vb = sys.var(b, Role::Sink);
        sys.pin(va, 1.0);
        sys.pin(vb, 1.0);
        // lhs = 2, rhs = C = 0.75: irreducible violation of 1.25.
        sys.add_constraint(FlowConstraint {
            lhs: vec![Term { var: va, coeff: 1.0 }, Term { var: vb, coeff: 1.0 }],
            rhs: vec![],
            ..Default::default()
        });
        let sol = solve(&sys, &SolveOptions::default());
        assert!((sol.violation - 1.25).abs() < 1e-9, "violation {}", sol.violation);
    }

    #[test]
    fn objective_history_is_recorded() {
        let sys = ConstraintSystem::new(0.75);
        let sol = solve(&sys, &SolveOptions { max_iters: 10, ..Default::default() });
        assert!(!sol.history.is_empty());
        assert!(sol.iterations <= 10 + 50);
    }

    /// Backoff averages: pinning a shared backoff variable raises the score
    /// of every event averaging over it.
    #[test]
    fn shared_backoff_correlation() {
        let mut sys = ConstraintSystem::new(0.75);
        let shared = sys.rep("x.save()");
        let spec1 = sys.rep("media(param f).save()");
        let vsh = sys.var(shared, Role::Sink);
        let vs1 = sys.var(spec1, Role::Sink);
        let src = sys.rep("request.args.get()");
        let vsrc = sys.var(src, Role::Source);
        sys.pin(vsrc, 1.0);
        // src + snk_avg ≤ C with snk averaged over {spec1, shared}:
        // wait — constraint must push snk UP: use a 4c-style constraint
        // src + snk ≤ san + C is not it; instead model 4b:
        // src + san ≤ snk + C with a pinned sanitizer.
        let san = sys.rep("clean()");
        let vsan = sys.var(san, Role::Sanitizer);
        sys.pin(vsan, 1.0);
        sys.add_constraint(FlowConstraint {
            lhs: vec![Term { var: vsrc, coeff: 1.0 }, Term { var: vsan, coeff: 1.0 }],
            rhs: vec![Term { var: vs1, coeff: 0.5 }, Term { var: vsh, coeff: 0.5 }],
            ..Default::default()
        });
        let sol = solve(&sys, &SolveOptions::default());
        // 2 ≤ 0.5(vs1 + vsh) + 0.75 ⇒ vs1 + vsh ≥ 2.5 ⇒ both ≈ 1.
        assert!(sol.score(vs1) > 0.8, "vs1 = {}", sol.score(vs1));
        assert!(sol.score(vsh) > 0.8, "vsh = {}", sol.score(vsh));
    }

    /// NaN hyperparameters poison every iterate: validation must catch the
    /// config up front, short-circuit to diverged, and still hand back
    /// finite sanitized scores — without burning `max_iters` twice.
    #[test]
    fn nan_lambda_is_detected_and_sanitized() {
        let mut sys = ConstraintSystem::new(0.75);
        let a = sys.rep("a()");
        let b = sys.rep("b()");
        let va = sys.var(a, Role::Source);
        let vb = sys.var(b, Role::Sink);
        sys.pin(va, 1.0);
        sys.add_constraint(FlowConstraint {
            lhs: vec![Term { var: va, coeff: 1.0 }],
            rhs: vec![Term { var: vb, coeff: 1.0 }],
            ..Default::default()
        });
        let sol = solve(&sys, &SolveOptions { lambda: f64::NAN, ..Default::default() });
        assert!(sol.diverged, "NaN λ must be reported as divergence");
        assert_eq!(sol.iterations, 0, "short-circuits before any epoch");
        assert_eq!(sol.restarts, 0, "no doomed restart is attempted");
        assert!(sol.scores.iter().all(|s| s.is_finite() && (0.0..=1.0).contains(s)));
        assert_eq!(sol.score(va), 1.0, "pins survive sanitization");
    }

    /// Every invalid hyperparameter short-circuits before the first epoch.
    #[test]
    fn invalid_hyperparameters_short_circuit() {
        let mut sys = ConstraintSystem::new(0.75);
        let a = sys.rep("a()");
        let va = sys.var(a, Role::Source);
        sys.pin(va, 1.0);
        let bad_opts = [
            SolveOptions { lambda: f64::NAN, ..Default::default() },
            SolveOptions { lambda: f64::INFINITY, ..Default::default() },
            SolveOptions {
                adam: AdamConfig { lr: f64::NAN, ..Default::default() },
                ..Default::default()
            },
            SolveOptions {
                adam: AdamConfig { lr: 0.0, ..Default::default() },
                ..Default::default()
            },
            SolveOptions {
                adam: AdamConfig { beta1: 1.5, ..Default::default() },
                ..Default::default()
            },
            SolveOptions {
                adam: AdamConfig { beta2: f64::NAN, ..Default::default() },
                ..Default::default()
            },
        ];
        for opts in bad_opts {
            assert!(opts.validate().is_err());
            let sol = solve(&sys, &opts);
            assert!(sol.diverged);
            assert_eq!(sol.iterations, 0);
            assert_eq!(sol.restarts, 0);
            assert!(sol.history.is_empty() && sol.trace.is_empty());
            assert_eq!(sol.final_lr.to_bits(), opts.adam.lr.to_bits());
            assert_eq!(sol.score(va), 1.0, "pins survive the short-circuit");
        }
    }

    #[test]
    fn healthy_runs_do_not_report_divergence() {
        let mut sys = ConstraintSystem::new(0.75);
        let a = sys.rep("a()");
        let v = sys.var(a, Role::Source);
        sys.pin(v, 1.0);
        let sol = solve(&sys, &SolveOptions::default());
        assert!(!sol.diverged);
        assert_eq!(sol.restarts, 0);
        assert_eq!(sol.final_lr, SolveOptions::default().adam.lr);
        assert!(sol.trace.is_empty(), "stride 0 records no trace");
    }

    /// A solvable system traced at stride 7: epochs strictly increase,
    /// start at 0, and end at the last epoch actually run.
    #[test]
    fn trace_sampling_covers_first_and_final_epoch() {
        let mut sys = ConstraintSystem::new(0.75);
        let s = sys.rep("src()");
        let m = sys.rep("san()");
        let vsrc = sys.var(s, Role::Source);
        let vsan = sys.var(m, Role::Sanitizer);
        sys.pin(vsrc, 1.0);
        sys.add_constraint(FlowConstraint {
            lhs: vec![Term { var: vsrc, coeff: 1.0 }],
            rhs: vec![Term { var: vsan, coeff: 1.0 }],
            ..Default::default()
        });
        let opts = SolveOptions { trace_stride: 7, ..Default::default() };
        let sol = solve(&sys, &opts);
        assert!(!sol.trace.is_empty());
        assert_eq!(sol.trace[0].epoch, 0);
        assert!(sol.trace.windows(2).all(|w| w[0].epoch < w[1].epoch));
        assert_eq!(sol.trace.last().unwrap().epoch as usize, sol.iterations - 1);
        for e in &sol.trace {
            assert!(e.objective.is_finite());
            assert!(e.hinge_loss >= 0.0);
            assert!(e.grad_norm.is_finite() && e.grad_norm >= 0.0);
            assert_eq!(e.lr, opts.adam.lr);
        }
        // Interior samples land on stride marks.
        for e in &sol.trace[..sol.trace.len() - 1] {
            assert_eq!(e.epoch % 7, 0, "epoch {}", e.epoch);
        }
        // The objective column matches the untraced history exactly.
        for e in &sol.trace {
            assert_eq!(e.objective, sol.history[e.epoch as usize]);
        }
    }

    /// Runtime divergence (as opposed to an invalid config): ε = 0 and
    /// λ = 0 on a free variable make the first step compute 0/√0 = NaN,
    /// which the guard catches and retries once at a scaled rate.
    #[test]
    fn restart_is_surfaced_with_scaled_lr() {
        let mut sys = ConstraintSystem::new(0.75);
        let a = sys.rep("a()");
        let va = sys.var(a, Role::Source);
        let opts = SolveOptions {
            lambda: 0.0,
            adam: AdamConfig { eps: 0.0, ..Default::default() },
            trace_stride: 1,
            ..Default::default()
        };
        assert!(opts.validate().is_ok(), "ε = 0 is a legal (if sharp) config");
        let sol = solve(&sys, &opts);
        assert!(sol.diverged);
        assert_eq!(sol.restarts, 1, "restart count surfaced");
        assert_eq!(sol.final_lr, opts.adam.lr * RESTART_LR_SCALE);
        assert!(!sol.trace.is_empty(), "diverged runs still trace their epochs");
        assert!(sol.score(va).is_finite(), "sanitization holds after restart");
    }

    #[test]
    fn evaluate_matches_solution_fields() {
        let mut sys = ConstraintSystem::new(0.75);
        let a = sys.rep("a()");
        let v = sys.var(a, Role::Source);
        sys.pin(v, 1.0);
        let sol = solve(&sys, &SolveOptions::default());
        let (viol, obj) = evaluate(&sys, &sol.scores, 0.1);
        assert!((viol - sol.violation).abs() < 1e-12);
        assert!((obj - sol.objective).abs() < 1e-12);
    }

    /// Thread count must not change a single bit of the result.
    #[test]
    fn thread_count_is_bitwise_invisible() {
        let mut sys = ConstraintSystem::new(0.75);
        let s = sys.rep("src()");
        let m = sys.rep("san()");
        let t = sys.rep("snk()");
        let vsrc = sys.var(s, Role::Source);
        let vsan = sys.var(m, Role::Sanitizer);
        let vsnk = sys.var(t, Role::Sink);
        sys.pin(vsrc, 1.0);
        sys.pin(vsnk, 1.0);
        sys.add_constraint(FlowConstraint {
            lhs: vec![Term { var: vsrc, coeff: 1.0 }, Term { var: vsnk, coeff: 1.0 }],
            rhs: vec![Term { var: vsan, coeff: 1.0 }],
            ..Default::default()
        });
        let base = solve(&sys, &SolveOptions { trace_stride: 3, ..Default::default() });
        for threads in [2, 4, 8] {
            let sol = solve(
                &sys,
                &SolveOptions { trace_stride: 3, threads, ..Default::default() },
            );
            let same = base
                .scores
                .iter()
                .zip(&sol.scores)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "threads={threads} changed the scores");
            assert_eq!(base.history, sol.history);
            assert_eq!(base.iterations, sol.iterations);
            assert_eq!(base.stop, sol.stop, "stop reason must be thread-invariant");
            assert_eq!(base.objective.to_bits(), sol.objective.to_bits());
            assert_eq!(base.trace.len(), sol.trace.len());
            for (a, b) in base.trace.iter().zip(&sol.trace) {
                assert_eq!(a.grad_norm.to_bits(), b.grad_norm.to_bits());
            }
        }
    }

    /// A system whose objective settles quickly: the plateau detector
    /// stops well short of `max_iters`, records the reason, and counts
    /// the saved epochs — while `early_stop: None` reproduces the legacy
    /// stall exit.
    #[test]
    fn plateau_detector_stops_early_and_reports() {
        let mut sys = ConstraintSystem::new(0.75);
        let s = sys.rep("src()");
        let m = sys.rep("san()");
        let vsrc = sys.var(s, Role::Source);
        let vsan = sys.var(m, Role::Sanitizer);
        sys.pin(vsrc, 1.0);
        sys.add_constraint(FlowConstraint {
            lhs: vec![Term { var: vsrc, coeff: 1.0 }],
            rhs: vec![Term { var: vsan, coeff: 1.0 }],
            ..Default::default()
        });
        // With defaults, the absolute stall window sees this small
        // system's plateau first — enabling early-stop preserves the
        // legacy stop epoch and scores bit-for-bit.
        let default_run = solve(&sys, &SolveOptions::default());
        let legacy = solve(&sys, &SolveOptions { early_stop: None, ..Default::default() });
        assert_eq!(default_run.stop, StopReason::Stall);
        assert_eq!(legacy.stop, StopReason::Stall);
        assert_eq!(default_run.iterations, legacy.iterations);
        assert!(default_run.iterations < SolveOptions::default().max_iters);
        for (a, b) in default_run.scores.iter().zip(&legacy.scores) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(
            default_run.epochs_saved,
            SolveOptions::default().max_iters - default_run.iterations
        );
        assert_eq!(legacy.epochs_saved, SolveOptions::default().max_iters - legacy.iterations);

        // A coarse relative tolerance makes the plateau detector the
        // first exit: per-epoch gains stop counting as progress long
        // before they drop below the absolute stall tolerance.
        let coarse = SolveOptions {
            early_stop: Some(EarlyStop { patience: 2, rel_tol: 0.5, min_iters: 0 }),
            ..Default::default()
        };
        let early = solve(&sys, &coarse);
        assert_eq!(early.stop, StopReason::Plateau, "iterations = {}", early.iterations);
        assert!(early.iterations < default_run.iterations);
        assert_eq!(early.epochs_saved, coarse.max_iters - early.iterations);
    }

    /// `min_iters` gates every convergence exit — stall window included —
    /// however flat the objective is from epoch 0.
    #[test]
    fn min_iters_is_respected() {
        // An empty system is maximally flat: objective 0 every epoch. The
        // stall window is ready from epoch 51 but the floor defers the
        // exit to exactly `min_iters`.
        let sys = ConstraintSystem::new(0.75);
        let opts = SolveOptions {
            early_stop: Some(EarlyStop { patience: 1, rel_tol: 1e-3, min_iters: 73 }),
            ..Default::default()
        };
        let sol = solve(&sys, &opts);
        assert_eq!(sol.stop, StopReason::Stall);
        assert!(sol.iterations >= 73, "stopped at {} < min_iters", sol.iterations);
        assert_eq!(sol.iterations, 73);

        // Without a floor, patience 1 lets the plateau detector fire at
        // the first strike boundary: epoch 10, so 11 iterations.
        let opts = SolveOptions {
            early_stop: Some(EarlyStop { patience: 1, rel_tol: 1e-3, min_iters: 0 }),
            ..Default::default()
        };
        let sol = solve(&sys, &opts);
        assert_eq!(sol.stop, StopReason::Plateau);
        assert_eq!(sol.iterations, 11);
    }

    /// Invalid early-stop configurations short-circuit like any other bad
    /// hyperparameter.
    #[test]
    fn invalid_early_stop_short_circuits() {
        let mut sys = ConstraintSystem::new(0.75);
        let a = sys.rep("a()");
        let va = sys.var(a, Role::Source);
        sys.pin(va, 1.0);
        for es in [
            EarlyStop { patience: 0, ..Default::default() },
            EarlyStop { rel_tol: f64::NAN, ..Default::default() },
            EarlyStop { rel_tol: -1.0, ..Default::default() },
        ] {
            let opts = SolveOptions { early_stop: Some(es), ..Default::default() };
            assert!(opts.validate().is_err());
            let sol = solve(&sys, &opts);
            assert!(sol.diverged);
            assert_eq!(sol.stop, StopReason::InvalidOptions);
            assert_eq!(sol.iterations, 0);
            assert_eq!(sol.epochs_saved, 0);
        }
    }

    /// The stride-aligned check means tracing on or off never moves the
    /// stop epoch — `trace_stride` stays a pure observability knob.
    #[test]
    fn trace_stride_does_not_move_the_stop_epoch() {
        let mut sys = ConstraintSystem::new(0.75);
        let s = sys.rep("src()");
        let m = sys.rep("san()");
        let vsrc = sys.var(s, Role::Source);
        let vsan = sys.var(m, Role::Sanitizer);
        sys.pin(vsrc, 1.0);
        sys.add_constraint(FlowConstraint {
            lhs: vec![Term { var: vsrc, coeff: 1.0 }],
            rhs: vec![Term { var: vsan, coeff: 1.0 }],
            ..Default::default()
        });
        let untraced = solve(&sys, &SolveOptions::default());
        for stride in [1, 3, 7, 10] {
            let traced = solve(&sys, &SolveOptions { trace_stride: stride, ..Default::default() });
            assert_eq!(untraced.iterations, traced.iterations, "stride {stride}");
            assert_eq!(untraced.stop, traced.stop);
            for (a, b) in untraced.scores.iter().zip(&traced.scores) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// Warm-starting from a converged iterate: pins survive, scores stay
    /// sanitized, and the warm trajectory is bitwise thread-invariant —
    /// the init only moves where the trajectory begins.
    #[test]
    fn warm_start_is_thread_invariant_and_respects_pins() {
        let mut sys = ConstraintSystem::new(0.75);
        let s = sys.rep("src()");
        let m = sys.rep("san()");
        let t = sys.rep("snk()");
        let vsrc = sys.var(s, Role::Source);
        let vsan = sys.var(m, Role::Sanitizer);
        let vsnk = sys.var(t, Role::Sink);
        sys.pin(vsrc, 1.0);
        sys.pin(vsnk, 1.0);
        sys.add_constraint(FlowConstraint {
            lhs: vec![Term { var: vsrc, coeff: 1.0 }, Term { var: vsnk, coeff: 1.0 }],
            rhs: vec![Term { var: vsan, coeff: 1.0 }],
            ..Default::default()
        });
        let cs = CompiledSystem::compile(&sys);
        let cold = solve_compiled(&cs, &SolveOptions::default());
        // Perturb the converged scores slightly — the shape of a stale
        // checkpoint after a small corpus delta.
        let init: Vec<f64> = cold.scores.iter().map(|s| (s - 0.05).clamp(0.0, 1.0)).collect();
        let base = solve_compiled_warm(&cs, &SolveOptions::default(), &init);
        assert!(!base.diverged);
        assert_eq!(base.score(vsrc), 1.0, "pins reassert over the warm init");
        assert_eq!(base.score(vsnk), 1.0);
        assert!(base.score(vsan) > 0.9, "san = {}", base.score(vsan));
        assert!(base.scores.iter().all(|s| (0.0..=1.0).contains(s)));
        for threads in [2, 4] {
            let warm = solve_compiled_warm(
                &cs,
                &SolveOptions { threads, ..Default::default() },
                &init,
            );
            assert_eq!(base.iterations, warm.iterations, "threads={threads}");
            assert_eq!(base.stop, warm.stop);
            for (a, b) in base.scores.iter().zip(&warm.scores) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
        // Warm inits are sanitized: NaN entries become 0, out-of-range
        // entries are clamped, and the run stays healthy.
        let dirty = vec![f64::NAN, 7.0, -3.0];
        let sol = solve_compiled_warm(&cs, &SolveOptions::default(), &dirty);
        assert!(!sol.diverged);
        assert!(sol.scores.iter().all(|s| s.is_finite() && (0.0..=1.0).contains(s)));
    }

    /// An init vector of the wrong length is ignored: the run is exactly
    /// the cold solve, bit for bit.
    #[test]
    fn warm_start_wrong_length_falls_back_to_cold() {
        let mut sys = ConstraintSystem::new(0.75);
        let s = sys.rep("src()");
        let m = sys.rep("san()");
        let vsrc = sys.var(s, Role::Source);
        let vsan = sys.var(m, Role::Sanitizer);
        sys.pin(vsrc, 1.0);
        sys.add_constraint(FlowConstraint {
            lhs: vec![Term { var: vsrc, coeff: 1.0 }],
            rhs: vec![Term { var: vsan, coeff: 1.0 }],
            ..Default::default()
        });
        let cs = CompiledSystem::compile(&sys);
        let cold = solve_compiled(&cs, &SolveOptions::default());
        let warm = solve_compiled_warm(&cs, &SolveOptions::default(), &[0.9]);
        assert_eq!(cold.iterations, warm.iterations);
        for (a, b) in cold.scores.iter().zip(&warm.scores) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn stop_reason_round_trips_through_strings_and_codes() {
        let all = [
            StopReason::MaxIters,
            StopReason::Stall,
            StopReason::Plateau,
            StopReason::Diverged,
            StopReason::InvalidOptions,
        ];
        for (i, r) in all.iter().enumerate() {
            assert_eq!(StopReason::parse(r.as_str()), Some(*r));
            assert_eq!(r.code() as usize, i);
            assert_eq!(r.to_string(), r.as_str());
        }
        assert_eq!(StopReason::parse("warp_drive"), None);
    }
}
