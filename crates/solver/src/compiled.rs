//! Compile-then-iterate solver kernel (the CSR lowering of §4.4).
//!
//! [`CompiledSystem::compile`] lowers a [`ConstraintSystem`] into a flat
//! CSR layout: one contiguous terms array (struct-of-arrays: variable,
//! signed coefficient, lane slot) with per-row offsets. Lhs terms carry
//! `+coeff` and rhs terms `−coeff`, so the per-constraint gap
//! `Σ lhs − Σ rhs − C` collapses to a single signed dot product and the
//! epoch gap/gradient pass becomes a branch-light linear scan with no
//! nested allocations. Duplicate variables within a constraint are
//! pre-combined at compile time, and — because big-code corpora repeat
//! the same flow pattern across many files — *identical constraints* are
//! pre-combined too: each distinct signed-term row is stored once with an
//! integer weight (its multiplicity), in first-occurrence order. A row's
//! gap test is unweighted; its violation and gradient contributions are
//! scaled by the weight, which is exactly the sum the duplicates would
//! have produced up to one final rounding. On real corpora this shrinks
//! the hot loop several-fold.
//!
//! ## Deterministic parallel reduction
//!
//! Floating-point addition is not associative, so a parallel gradient
//! accumulation naively partitioned by thread count would change the
//! summation order — and therefore the scores — with `threads`. Instead,
//! rows are partitioned into *lanes*: contiguous ranges whose count and
//! boundaries depend only on the row count, never on the thread count.
//! Each lane accumulates hinge-gradient contributions
//! into its own compact slot buffer (one slot per distinct variable the
//! lane touches), and a variable-major transpose (`var_offsets` /
//! `var_entries`) reduces the per-lane partials in a fixed order.
//! Threads only decide *which worker* runs a lane; the arithmetic — the
//! order every term is added in — is identical for 1 and N threads, so
//! scores are byte-identical across thread counts.
//!
//! ## Vector-friendly inner loops
//!
//! The hot reductions — the per-row gap dot product, the per-variable
//! gradient fold, and the L1 score sum — run as fixed-width chunks of
//! [`ACC_WIDTH`] independent f64 accumulators with a scalar tail, combined
//! pairwise in one fixed order. Independent accumulators break the serial
//! addition dependency chain so the autovectorizer can lift the loop body
//! into SIMD lanes (and scalar hardware overlaps the FMAs); because the
//! chunk layout is a pure function of the data length — never of the
//! thread count — the summation order stays deterministic and results
//! bitwise thread-invariant.
//!
//! ## Row reordering for locality
//!
//! After row dedup, rows *within each lane* are reordered by their
//! dominant (lowest-index) variable, so consecutive rows touch
//! neighbouring score/slot entries and the gap pass walks `x` and the
//! lane buffer roughly in order instead of hopping across them. Lane
//! boundaries are fixed before the sort, so no row changes lanes, and the
//! permutation ([`CompiledSystem::row_permutation`]) is recorded so the
//! compile stays auditable — nothing downstream observes row order:
//! scores are indexed by variable, and extraction reads only scores.

use seldon_constraints::ConstraintSystem;
use std::collections::HashMap;

/// Target number of rows per lane.
const LANE_TARGET: usize = 1024;
/// Upper bound on lanes (and thus on useful gap-pass workers).
const MAX_LANES: usize = 64;
/// Target number of variables per update chunk (the fixed partition the
/// gradient-norm reduction and the Adam update phase are chunked by).
const VAR_CHUNK_TARGET: usize = 4096;
/// Width of the chunked reductions: independent f64 accumulators per
/// chunk, combined pairwise in a fixed order. 4 keeps the combine tree
/// exact to spell out while filling a 256-bit SIMD register.
const ACC_WIDTH: usize = 4;

/// Sums `xs` with [`ACC_WIDTH`] independent accumulators and a scalar
/// tail — the chunked, autovectorizer-friendly reduction every L1 sum in
/// the solver shares. The summation order depends only on `xs.len()`.
pub(crate) fn chunked_sum(xs: &[f64]) -> f64 {
    let chunks = xs.len() / ACC_WIDTH;
    let mut acc = [0.0f64; ACC_WIDTH];
    for chunk in xs[..chunks * ACC_WIDTH].chunks_exact(ACC_WIDTH) {
        for (a, &v) in acc.iter_mut().zip(chunk) {
            *a += v;
        }
    }
    let mut sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for &v in &xs[chunks * ACC_WIDTH..] {
        sum += v;
    }
    sum
}

/// The signed gap dot product of one row: `Σ coeffs[t] · x[vars[t]]`,
/// chunked like [`chunked_sum`]. `coeffs` and `vars` must be parallel.
#[inline]
fn chunked_dot(coeffs: &[f64], vars: &[u32], x: &[f64]) -> f64 {
    let chunks = coeffs.len() / ACC_WIDTH;
    let mut acc = [0.0f64; ACC_WIDTH];
    for (cc, vc) in coeffs[..chunks * ACC_WIDTH]
        .chunks_exact(ACC_WIDTH)
        .zip(vars[..chunks * ACC_WIDTH].chunks_exact(ACC_WIDTH))
    {
        for ((a, &coeff), &var) in acc.iter_mut().zip(cc).zip(vc) {
            *a += coeff * x[var as usize];
        }
    }
    let mut sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (&coeff, &var) in coeffs[chunks * ACC_WIDTH..].iter().zip(&vars[chunks * ACC_WIDTH..]) {
        sum += coeff * x[var as usize];
    }
    sum
}

/// One contiguous row range with a private gradient buffer shape.
#[derive(Debug, Clone)]
struct Lane {
    /// First row index (inclusive).
    start: u32,
    /// Last row index (exclusive).
    end: u32,
    /// Number of distinct variables the lane touches — its buffer size.
    slots: u32,
}

/// A constraint system lowered to a flat CSR layout with a fixed lane
/// partition for deterministic parallel accumulation.
#[derive(Debug, Clone)]
pub struct CompiledSystem {
    n_vars: usize,
    /// Original constraint count, before identical rows were combined.
    n_constraints: usize,
    c: f64,
    /// Pinned `(var, value)` pairs, sorted by variable index.
    pins: Vec<(u32, f64)>,
    /// CSR row offsets into the term arrays; length `rows + 1`.
    offsets: Vec<u32>,
    /// Row multiplicities: how many original constraints each distinct
    /// row stands for (always an exact small integer).
    weights: Vec<f64>,
    /// Term variable indices, row-major, ascending within a row.
    term_vars: Vec<u32>,
    /// Signed term coefficients (`+` for lhs, `−` for rhs, duplicates
    /// combined), parallel to `term_vars` — the gap dot product.
    term_coeffs: Vec<f64>,
    /// Weight-scaled coefficients (`weights[row] * term_coeffs[t]`),
    /// parallel to `term_vars` — the gradient accumulate.
    term_wcoeffs: Vec<f64>,
    /// Lane-local gradient-buffer slot per term, parallel to `term_vars`.
    term_slots: Vec<u32>,
    /// Row permutation of the locality sort: `row_perm[new] = old`, where
    /// `old` is the row's index in first-occurrence (dedup) order. A
    /// within-lane permutation — no row crosses a lane boundary.
    row_perm: Vec<u32>,
    lanes: Vec<Lane>,
    /// Variable-major transpose offsets; length `n_vars + 1`.
    var_offsets: Vec<u32>,
    /// `(lane, slot)` pairs per variable, ascending lane order — the
    /// deterministic reduction order of the per-lane gradient partials.
    var_entries: Vec<(u32, u32)>,
    /// Fixed variable-chunk width for the update phase (≥ 1).
    var_chunk: usize,
}

impl CompiledSystem {
    /// Lowers `sys` into the flat CSR + lane layout.
    pub fn compile(sys: &ConstraintSystem) -> CompiledSystem {
        let n = sys.var_count();
        let m = sys.constraint_count();

        let mut offsets = Vec::with_capacity(m + 1);
        offsets.push(0u32);
        let mut weights: Vec<f64> = Vec::new();
        let mut term_vars: Vec<u32> = Vec::new();
        let mut term_coeffs: Vec<f64> = Vec::new();
        // Per-constraint duplicate combining into a scratch row:
        // `seen_in[v]` holds the last constraint that emitted a term for
        // `v`, `term_at[v]` its position in `row`. The combined row,
        // sorted by variable, is the canonical form identical constraints
        // share — `row_of` maps it to its emitted row index.
        let mut seen_in: Vec<u32> = vec![u32::MAX; n];
        let mut term_at: Vec<u32> = vec![0; n];
        let mut row: Vec<(u32, f64)> = Vec::new();
        let mut row_of: HashMap<Vec<(u32, u64)>, u32> = HashMap::new();
        for (ci, c) in sys.constraints.iter().enumerate() {
            row.clear();
            let signed = c
                .lhs
                .iter()
                .map(|t| (t.var.index(), t.coeff))
                .chain(c.rhs.iter().map(|t| (t.var.index(), -t.coeff)));
            for (vi, coeff) in signed {
                if seen_in[vi] == ci as u32 {
                    row[term_at[vi] as usize].1 += coeff;
                } else {
                    seen_in[vi] = ci as u32;
                    term_at[vi] = row.len() as u32;
                    row.push((vi as u32, coeff));
                }
            }
            row.sort_unstable_by_key(|&(v, _)| v);
            let key: Vec<(u32, u64)> = row.iter().map(|&(v, c)| (v, c.to_bits())).collect();
            match row_of.get(&key) {
                Some(&ri) => weights[ri as usize] += 1.0,
                None => {
                    row_of.insert(key, weights.len() as u32);
                    weights.push(1.0);
                    for &(v, coeff) in &row {
                        term_vars.push(v);
                        term_coeffs.push(coeff);
                    }
                    offsets.push(term_vars.len() as u32);
                }
            }
        }
        let rows = weights.len();

        // Locality reordering: lane boundaries are fixed *before* the sort
        // (a pure function of the row count), then rows within each lane
        // are stably sorted by their dominant — lowest-index, i.e. first,
        // since terms are var-ascending — variable. Consecutive rows then
        // touch neighbouring `x` entries and the gap pass walks the score
        // vector roughly in order. Empty rows (no terms) sort last.
        let lane_count = rows.div_ceil(LANE_TARGET).clamp(1, MAX_LANES);
        let per_lane = rows.div_ceil(lane_count).max(1);
        let mut row_perm: Vec<u32> = (0..rows as u32).collect();
        for l in 0..lane_count {
            let start = (l * per_lane).min(rows);
            let end = ((l + 1) * per_lane).min(rows);
            row_perm[start..end].sort_by_key(|&ri| {
                let t0 = offsets[ri as usize] as usize;
                let t1 = offsets[ri as usize + 1] as usize;
                if t0 == t1 {
                    u32::MAX
                } else {
                    term_vars[t0]
                }
            });
        }
        // Rebuild the CSR arrays in permuted order.
        let mut p_offsets = Vec::with_capacity(rows + 1);
        p_offsets.push(0u32);
        let mut p_weights = Vec::with_capacity(rows);
        let mut p_vars = Vec::with_capacity(term_vars.len());
        let mut p_coeffs = Vec::with_capacity(term_coeffs.len());
        for &old in &row_perm {
            let (t0, t1) =
                (offsets[old as usize] as usize, offsets[old as usize + 1] as usize);
            p_weights.push(weights[old as usize]);
            p_vars.extend_from_slice(&term_vars[t0..t1]);
            p_coeffs.extend_from_slice(&term_coeffs[t0..t1]);
            p_offsets.push(p_vars.len() as u32);
        }
        let offsets = p_offsets;
        let weights = p_weights;
        let term_vars = p_vars;
        let term_coeffs = p_coeffs;

        let mut term_wcoeffs = vec![0.0f64; term_coeffs.len()];
        for ri in 0..rows {
            let (t0, t1) = (offsets[ri] as usize, offsets[ri + 1] as usize);
            for t in t0..t1 {
                term_wcoeffs[t] = weights[ri] * term_coeffs[t];
            }
        }

        // Lane slot assignment: first appearance of a variable in a lane
        // claims the next slot; `touch` records every (var, lane, slot)
        // in ascending lane order.
        let mut term_slots = vec![0u32; term_vars.len()];
        let mut lanes = Vec::with_capacity(lane_count);
        let mut seen_lane: Vec<u32> = vec![u32::MAX; n];
        let mut slot_of: Vec<u32> = vec![0; n];
        let mut touch: Vec<(u32, u32, u32)> = Vec::new();
        for l in 0..lane_count {
            let start = (l * per_lane).min(rows);
            let end = ((l + 1) * per_lane).min(rows);
            let mut slots = 0u32;
            let t0 = offsets[start] as usize;
            let t1 = offsets[end] as usize;
            for (slot, &var) in term_slots[t0..t1].iter_mut().zip(&term_vars[t0..t1]) {
                let vi = var as usize;
                if seen_lane[vi] != l as u32 {
                    seen_lane[vi] = l as u32;
                    slot_of[vi] = slots;
                    touch.push((var, l as u32, slots));
                    slots += 1;
                }
                *slot = slot_of[vi];
            }
            lanes.push(Lane { start: start as u32, end: end as u32, slots });
        }

        // Variable-major transpose via a stable counting sort: `touch` is
        // lane-ascending, so each variable's entries stay lane-ascending.
        let mut var_offsets = vec![0u32; n + 1];
        for &(v, _, _) in &touch {
            var_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            var_offsets[i + 1] += var_offsets[i];
        }
        let mut cursor: Vec<u32> = var_offsets[..n].to_vec();
        let mut var_entries = vec![(0u32, 0u32); touch.len()];
        for &(v, l, s) in &touch {
            var_entries[cursor[v as usize] as usize] = (l, s);
            cursor[v as usize] += 1;
        }

        let var_chunks = n.div_ceil(VAR_CHUNK_TARGET).clamp(1, MAX_LANES);
        let var_chunk = n.div_ceil(var_chunks).max(1);

        CompiledSystem {
            n_vars: n,
            n_constraints: m,
            c: sys.c,
            pins: sys.pinned_sorted(),
            offsets,
            weights,
            term_vars,
            term_coeffs,
            term_wcoeffs,
            term_slots,
            row_perm,
            lanes,
            var_offsets,
            var_entries,
            var_chunk,
        }
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.n_vars
    }

    /// Number of original constraints (before identical rows combined).
    pub fn constraint_count(&self) -> usize {
        self.n_constraints
    }

    /// Number of distinct weighted rows the hot loop actually iterates.
    pub fn row_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (combined) terms across all distinct rows.
    pub fn term_count(&self) -> usize {
        self.term_vars.len()
    }

    /// Number of lanes in the fixed row partition.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// The locality-sort row permutation: `row_permutation()[new] = old`,
    /// mapping each stored row back to its index in first-occurrence
    /// (dedup) order. Always a within-lane permutation.
    pub fn row_permutation(&self) -> &[u32] {
        &self.row_perm
    }

    /// The implication-strength constant `C`.
    pub fn c(&self) -> f64 {
        self.c
    }

    /// Pinned `(var index, value)` pairs, sorted by variable index.
    pub fn pins(&self) -> &[(u32, f64)] {
        &self.pins
    }

    /// Fixed variable-chunk width of the update partition (≥ 1); depends
    /// only on the variable count, never on the thread count.
    pub fn var_chunk(&self) -> usize {
        self.var_chunk
    }

    /// Number of chunks in the fixed update partition.
    pub fn var_chunk_count(&self) -> usize {
        self.n_vars.div_ceil(self.var_chunk)
    }

    /// Restores pinned variables to their pinned values.
    pub fn apply_pins(&self, x: &mut [f64]) {
        for &(i, val) in &self.pins {
            x[i as usize] = val;
        }
    }

    /// Allocates one zeroed gradient buffer per lane, each sized to the
    /// lane's distinct-variable count.
    pub fn new_lane_buffers(&self) -> Vec<Vec<f64>> {
        self.lanes.iter().map(|l| vec![0.0; l.slots as usize]).collect()
    }

    /// Runs the gap pass over one lane: accumulates the hinge-gradient
    /// contributions of violated rows into `buf` (zeroed first) and
    /// returns the lane's `(violation, violated count)`. Violation and
    /// gradient are weight-scaled; the violated count is in original
    /// constraints (the row's multiplicity).
    pub fn lane_gap_pass(&self, lane: usize, x: &[f64], buf: &mut [f64]) -> (f64, usize) {
        let l = &self.lanes[lane];
        buf.fill(0.0);
        let mut violation = 0.0;
        let mut violated = 0usize;
        for ri in l.start as usize..l.end as usize {
            let t0 = self.offsets[ri] as usize;
            let t1 = self.offsets[ri + 1] as usize;
            let acc = chunked_dot(&self.term_coeffs[t0..t1], &self.term_vars[t0..t1], x);
            let gap = acc - self.c;
            if gap > 0.0 {
                let w = self.weights[ri];
                violation += w * gap;
                violated += w as usize;
                for (&wcoeff, &slot) in
                    self.term_wcoeffs[t0..t1].iter().zip(&self.term_slots[t0..t1])
                {
                    buf[slot as usize] += wcoeff;
                }
            }
        }
        (violation, violated)
    }

    /// Runs the gap pass over every lane, parallelized across up to
    /// `threads` scoped workers. Each worker owns a contiguous block of
    /// lanes (disjoint `&mut` buffer slices — no locks), and because the
    /// lane partition is a function of the row count alone, the per-lane
    /// results in `stats`/`bufs` are identical for any `threads`.
    pub fn gap_pass(
        &self,
        x: &[f64],
        threads: usize,
        bufs: &mut [Vec<f64>],
        stats: &mut [(f64, usize)],
    ) {
        let lanes = self.lanes.len();
        debug_assert_eq!(bufs.len(), lanes);
        debug_assert_eq!(stats.len(), lanes);
        let workers = threads.max(1).min(lanes);
        if workers <= 1 {
            for (lane, (buf, stat)) in bufs.iter_mut().zip(stats.iter_mut()).enumerate() {
                *stat = self.lane_gap_pass(lane, x, buf);
            }
            return;
        }
        let per = lanes.div_ceil(workers);
        std::thread::scope(|s| {
            for (w, (bufs_chunk, stats_chunk)) in
                bufs.chunks_mut(per).zip(stats.chunks_mut(per)).enumerate()
            {
                s.spawn(move || {
                    for (off, (buf, stat)) in
                        bufs_chunk.iter_mut().zip(stats_chunk.iter_mut()).enumerate()
                    {
                        *stat = self.lane_gap_pass(w * per + off, x, buf);
                    }
                });
            }
        });
    }

    /// The full objective gradient component for variable `i`: λ plus the
    /// per-lane hinge partials from `bufs`, reduced in the fixed chunked
    /// order of [`chunked_sum`] over the lane-ascending entry list — a
    /// pure function of the entry count, never of the thread count.
    #[inline]
    pub fn grad_var(&self, i: usize, lambda: f64, bufs: &[Vec<f64>]) -> f64 {
        let e0 = self.var_offsets[i] as usize;
        let e1 = self.var_offsets[i + 1] as usize;
        let entries = &self.var_entries[e0..e1];
        let chunks = entries.len() / ACC_WIDTH;
        let mut acc = [0.0f64; ACC_WIDTH];
        for chunk in entries[..chunks * ACC_WIDTH].chunks_exact(ACC_WIDTH) {
            for (a, &(lane, slot)) in acc.iter_mut().zip(chunk) {
                *a += bufs[lane as usize][slot as usize];
            }
        }
        let mut g = lambda + ((acc[0] + acc[1]) + (acc[2] + acc[3]));
        for &(lane, slot) in &entries[chunks * ACC_WIDTH..] {
            g += bufs[lane as usize][slot as usize];
        }
        g
    }

    /// Computes `(violation, objective)` of `x` with a flat scan over the
    /// compiled terms — the single evaluation path both [`crate::solve`]
    /// and [`crate::evaluate`] share.
    pub fn objective(&self, x: &[f64], lambda: f64) -> (f64, f64) {
        let mut violation = 0.0;
        for ri in 0..self.row_count() {
            let t0 = self.offsets[ri] as usize;
            let t1 = self.offsets[ri + 1] as usize;
            let acc = chunked_dot(&self.term_coeffs[t0..t1], &self.term_vars[t0..t1], x);
            let gap = acc - self.c;
            if gap > 0.0 {
                violation += self.weights[ri] * gap;
            }
        }
        let l1 = chunked_sum(x);
        (violation, violation + lambda * l1)
    }

    /// Computes the full gradient plus `(violation, violated)` through the
    /// lane machinery — the reference entry point parity tests compare
    /// against the naive per-constraint walk.
    pub fn gradient(&self, x: &[f64], lambda: f64) -> (Vec<f64>, f64, usize) {
        let mut bufs = self.new_lane_buffers();
        let mut stats = vec![(0.0, 0usize); self.lane_count()];
        self.gap_pass(x, 1, &mut bufs, &mut stats);
        let violation = stats.iter().map(|s| s.0).sum();
        let violated = stats.iter().map(|s| s.1).sum();
        let grad =
            (0..self.n_vars).map(|i| self.grad_var(i, lambda, &bufs)).collect();
        (grad, violation, violated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldon_constraints::{ConstraintSystem, FlowConstraint, Term, VarId};
    use seldon_specs::Role;

    fn two_sided_system() -> (ConstraintSystem, VarId, VarId, VarId) {
        let mut sys = ConstraintSystem::new(0.75);
        let a = sys.rep("a()");
        let b = sys.rep("b()");
        let c = sys.rep("c()");
        let va = sys.var(a, Role::Source);
        let vb = sys.var(b, Role::Sanitizer);
        let vc = sys.var(c, Role::Sink);
        sys.pin(va, 1.0);
        sys.add_constraint(FlowConstraint {
            lhs: vec![Term { var: va, coeff: 1.0 }, Term { var: vc, coeff: 1.0 }],
            rhs: vec![Term { var: vb, coeff: 0.5 }],
            ..Default::default()
        });
        (sys, va, vb, vc)
    }

    #[test]
    fn signed_coefficients_and_offsets() {
        let (sys, va, vb, vc) = two_sided_system();
        let cs = CompiledSystem::compile(&sys);
        assert_eq!(cs.constraint_count(), 1);
        assert_eq!(cs.row_count(), 1);
        assert_eq!(cs.term_count(), 3);
        assert_eq!(cs.offsets, vec![0, 3]);
        // Rows store terms in ascending variable order (the canonical
        // form identical constraints are matched on).
        assert_eq!(cs.term_vars, vec![va.0, vb.0, vc.0]);
        assert_eq!(cs.term_coeffs, vec![1.0, -0.5, 1.0]);
        assert_eq!(cs.weights, vec![1.0]);
        assert_eq!(cs.pins(), &[(va.0, 1.0)]);
    }

    #[test]
    fn duplicate_terms_are_combined() {
        let mut sys = ConstraintSystem::new(0.75);
        let a = sys.rep("a()");
        let va = sys.var(a, Role::Source);
        // a appears twice on the lhs and once on the rhs: 0.5 + 0.25 − 0.1.
        sys.add_constraint(FlowConstraint {
            lhs: vec![Term { var: va, coeff: 0.5 }, Term { var: va, coeff: 0.25 }],
            rhs: vec![Term { var: va, coeff: 0.1 }],
            ..Default::default()
        });
        let cs = CompiledSystem::compile(&sys);
        assert_eq!(cs.term_count(), 1);
        assert!((cs.term_coeffs[0] - 0.65).abs() < 1e-15);
    }

    #[test]
    fn identical_constraints_combine_into_one_weighted_row() {
        let mut sys = ConstraintSystem::new(0.75);
        let a = sys.rep("a()");
        let b = sys.rep("b()");
        let va = sys.var(a, Role::Source);
        let vb = sys.var(b, Role::Sink);
        // The same constraint three times — and once with the term order
        // flipped, which must still canonicalize to the same row.
        for _ in 0..3 {
            sys.add_constraint(FlowConstraint {
                lhs: vec![Term { var: va, coeff: 1.0 }, Term { var: vb, coeff: 0.5 }],
                rhs: vec![],
                ..Default::default()
            });
        }
        sys.add_constraint(FlowConstraint {
            lhs: vec![Term { var: vb, coeff: 0.5 }, Term { var: va, coeff: 1.0 }],
            rhs: vec![],
            ..Default::default()
        });
        // A genuinely different constraint stays its own row.
        sys.add_constraint(FlowConstraint {
            lhs: vec![Term { var: va, coeff: 1.0 }],
            rhs: vec![],
            ..Default::default()
        });
        let cs = CompiledSystem::compile(&sys);
        assert_eq!(cs.constraint_count(), 5);
        assert_eq!(cs.row_count(), 2);
        assert_eq!(cs.weights, vec![4.0, 1.0]);

        // gap per duplicate row at x = (1, 1): 1.5 − 0.75 = 0.75, counted
        // four times; the singleton adds 1 − 0.75 = 0.25.
        let x = vec![1.0, 1.0];
        let (viol, _) = cs.objective(&x, 0.0);
        assert!((viol - (4.0 * 0.75 + 0.25)).abs() < 1e-12);
        let (grad, gviol, violated) = cs.gradient(&x, 0.0);
        assert!((gviol - viol).abs() < 1e-12);
        assert_eq!(violated, 5, "violated counts original constraints");
        assert!((grad[0] - (4.0 * 1.0 + 1.0)).abs() < 1e-12);
        assert!((grad[1] - 4.0 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn lane_partition_depends_only_on_constraint_count() {
        let (sys, ..) = two_sided_system();
        let cs = CompiledSystem::compile(&sys);
        assert_eq!(cs.lane_count(), 1, "tiny systems compile to one lane");
        // The parallel gap pass with any thread count must match the
        // sequential one lane-for-lane.
        let x = vec![0.9, 0.1, 0.8];
        let mut bufs1 = cs.new_lane_buffers();
        let mut stats1 = vec![(0.0, 0usize); cs.lane_count()];
        cs.gap_pass(&x, 1, &mut bufs1, &mut stats1);
        let mut bufs8 = cs.new_lane_buffers();
        let mut stats8 = vec![(0.0, 0usize); cs.lane_count()];
        cs.gap_pass(&x, 8, &mut bufs8, &mut stats8);
        assert_eq!(stats1, stats8);
        assert_eq!(bufs1, bufs8);
    }

    #[test]
    fn objective_matches_gradient_violation() {
        let (sys, ..) = two_sided_system();
        let cs = CompiledSystem::compile(&sys);
        let x = vec![1.0, 0.0, 1.0];
        let (viol, obj) = cs.objective(&x, 0.1);
        let (grad, gviol, violated) = cs.gradient(&x, 0.1);
        assert!((viol - gviol).abs() < 1e-15);
        assert_eq!(violated, 1);
        assert!((viol - 1.25).abs() < 1e-12);
        assert!((obj - (1.25 + 0.1 * 2.0)).abs() < 1e-12);
        // Violated constraint contributes +1 to va/vc, −0.5 to vb, on top
        // of λ.
        assert!((grad[0] - 1.1).abs() < 1e-12);
        assert!((grad[1] - (0.1 - 0.5)).abs() < 1e-12);
        assert!((grad[2] - 1.1).abs() < 1e-12);
    }

    #[test]
    fn chunked_sum_matches_naive_sum_exactly_on_integers() {
        // Integer-valued f64s make every addition exact, so the chunked
        // combine tree and the serial fold must agree bit-for-bit — at
        // lengths that exercise full chunks, the tail, and both together.
        for len in [0usize, 1, 3, 4, 5, 8, 11, 17] {
            let xs: Vec<f64> = (0..len).map(|i| (i * 3 + 1) as f64).collect();
            let naive: f64 = xs.iter().sum();
            assert_eq!(chunked_sum(&xs), naive, "len {len}");
        }
    }

    /// Three single-variable constraints added in *descending* variable
    /// order, with distinct multiplicities (c ×2, b ×1, a ×3) plus one
    /// empty constraint, so the locality sort has real work to do.
    fn descending_system() -> ConstraintSystem {
        let mut sys = ConstraintSystem::new(0.75);
        let a = sys.rep("a()");
        let b = sys.rep("b()");
        let c = sys.rep("c()");
        let va = sys.var(a, Role::Source);
        let vb = sys.var(b, Role::Sanitizer);
        let vc = sys.var(c, Role::Sink);
        let single = |v, times: usize, sys: &mut ConstraintSystem| {
            for _ in 0..times {
                sys.add_constraint(FlowConstraint {
                    lhs: vec![Term { var: v, coeff: 1.0 }],
                    rhs: vec![],
                    ..Default::default()
                });
            }
        };
        // `add_constraint` filters empty constraints; push one directly to
        // exercise the empty-row (key `u32::MAX`) sort guard anyway.
        sys.constraints.push(FlowConstraint::default());
        single(vc, 2, &mut sys);
        single(vb, 1, &mut sys);
        single(va, 3, &mut sys);
        sys
    }

    #[test]
    fn rows_are_reordered_by_dominant_variable_within_a_lane() {
        let sys = descending_system();
        let cs = CompiledSystem::compile(&sys);
        // Dedup (first-occurrence) order was [empty, c, b, a] with weights
        // [1, 2, 1, 3]; the locality sort puts a, b, c first and the
        // empty row (key u32::MAX) last.
        assert_eq!(cs.row_count(), 4);
        assert_eq!(cs.term_vars, vec![0, 1, 2]);
        assert_eq!(cs.weights, vec![3.0, 1.0, 2.0, 1.0]);
        assert_eq!(cs.row_permutation(), &[3, 2, 1, 0]);
        // Semantics are order-independent: at x = 1 each singleton row
        // violates by 0.25, weighted 3 + 1 + 2 = 6 constraints.
        let x = vec![1.0, 1.0, 1.0];
        let (viol, _) = cs.objective(&x, 0.0);
        assert!((viol - 6.0 * 0.25).abs() < 1e-12);
        let (grad, _, violated) = cs.gradient(&x, 0.0);
        assert_eq!(violated, 6);
        assert_eq!(grad, vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn row_permutation_round_trips_first_occurrence_order() {
        let sys = descending_system();
        let cs = CompiledSystem::compile(&sys);
        let perm = cs.row_permutation();
        // A valid permutation of 0..rows …
        let mut sorted: Vec<u32> = perm.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..cs.row_count() as u32).collect::<Vec<_>>());
        // … that recovers dedup order: weights[new] is the weight the row
        // had at first-occurrence index perm[new].
        let dedup_weights = [1.0, 2.0, 1.0, 3.0];
        for (new, &old) in perm.iter().enumerate() {
            assert_eq!(cs.weights[new], dedup_weights[old as usize]);
        }
    }

    #[test]
    fn empty_system_compiles() {
        let sys = ConstraintSystem::new(0.75);
        let cs = CompiledSystem::compile(&sys);
        assert_eq!(cs.var_count(), 0);
        assert_eq!(cs.constraint_count(), 0);
        assert_eq!(cs.lane_count(), 1);
        assert_eq!(cs.objective(&[], 0.1), (0.0, 0.0));
        let (grad, viol, violated) = cs.gradient(&[], 0.1);
        assert!(grad.is_empty());
        assert_eq!((viol, violated), (0.0, 0));
    }
}
