//! # seldon-solver
//!
//! Optimization back end for the Seldon reproduction (§4.4 of the paper):
//! a from-scratch Adam optimizer with box projection, the relaxed
//! hinge-loss objective over information-flow constraints with L1
//! regularization, and §7.1 specification extraction with backoff decay.
//!
//! ## Example
//!
//! ```
//! use seldon_constraints::ConstraintSystem;
//! use seldon_solver::{solve, SolveOptions};
//!
//! let sys = ConstraintSystem::new(0.75);
//! let solution = solve(&sys, &SolveOptions::default());
//! assert_eq!(solution.scores.len(), 0);
//! ```

#![warn(missing_docs)]

pub mod adam;
pub mod compiled;
pub mod extract;
pub mod simplex;
pub mod solve;

pub use adam::{step_element, Adam, AdamConfig};
pub use compiled::CompiledSystem;
pub use extract::{extract, extraction_margin, rep_score, ExtractOptions, Extraction};
pub use simplex::{simplex, solve_exact, ExactSolution, LpOutcome, LpProblem};
pub use solve::{
    evaluate, solve, solve_compiled, solve_compiled_warm, EarlyStop, Solution, SolveOptions,
    StopReason, EARLY_STOP_STRIDE,
};
