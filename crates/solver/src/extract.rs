//! Extracting a taint specification from solved scores (§7.1).
//!
//! For each candidate event we loop over its backoff options from most to
//! least specific; the `i`-th option (0-based) selects a role if
//! `0.8^i · score ≥ t`. If no option and no role qualifies, the event has no
//! role. The selected representation text becomes the learned spec entry.

use crate::solve::Solution;
use seldon_constraints::{ConstraintSystem, RepId};
use seldon_propgraph::EventId;
use seldon_specs::{Role, RoleSet, TaintSpec};
use std::collections::HashMap;

/// Extraction parameters.
#[derive(Debug, Clone)]
pub struct ExtractOptions {
    /// Score thresholds `t` per role, indexed by [`Role::index`].
    ///
    /// The paper picks each threshold by sorting events by score and
    /// "striking a balance between the number of predicted specifications
    /// (recall) and precision" (§7.5 Q2); it lands on 0.1 for its score
    /// distribution. Our distribution is sharper around the pinned seeds,
    /// so the balanced default raises the sanitizer threshold, where
    /// path-intermediate events otherwise crowd the low-score region.
    pub thresholds: [f64; 3],
    /// Backoff decay per specificity level (0.8 in the paper).
    pub decay: f64,
    /// When true, events whose matched representation is pinned by the seed
    /// are skipped, so the output contains only *newly learned* roles.
    pub exclude_seeded: bool,
}

impl ExtractOptions {
    /// Uniform thresholds across roles.
    pub fn with_threshold(t: f64) -> Self {
        ExtractOptions { thresholds: [t; 3], ..Default::default() }
    }

    /// The threshold for `role`.
    pub fn threshold(&self, role: Role) -> f64 {
        self.thresholds[role.index()]
    }
}

impl Default for ExtractOptions {
    fn default() -> Self {
        ExtractOptions { thresholds: [0.1, 0.4, 0.1], decay: 0.8, exclude_seeded: true }
    }
}

/// The extracted result: a learned spec plus per-event role assignments.
#[derive(Debug, Clone, Default)]
pub struct Extraction {
    /// Learned specification entries (representation text → roles).
    pub spec: TaintSpec,
    /// Role set chosen for each candidate event.
    pub event_roles: HashMap<EventId, RoleSet>,
    /// The effective (decayed) score backing each learned `(rep, role)`.
    /// Keys are interned representations; resolve with [`RepId::as_str`].
    pub scores: HashMap<(RepId, Role), f64>,
    /// Backoff level (0 = most specific) of the winning selection behind
    /// each entry in [`Extraction::scores`] — the Fig. 11 x-axis.
    pub levels: HashMap<(RepId, Role), u32>,
    /// Role selections per backoff level: `backoff_hits[i]` counts
    /// `(event, role)` selections whose winning representation was the
    /// `i`-th backoff option (effective score `decay^i · score`). The
    /// vector is as long as the deepest level that scored a hit — the
    /// threshold-sweep record telemetry exports (§7.1).
    pub backoff_hits: Vec<usize>,
}

/// Runs the §7.1 extraction rule over all candidate events.
pub fn extract(
    sys: &ConstraintSystem,
    sol: &Solution,
    opts: &ExtractOptions,
) -> Extraction {
    let mut out = Extraction::default();
    for (event, reps) in &sys.event_reps {
        let mut roles = RoleSet::EMPTY;
        for role in Role::ALL {
            // Seed knowledge wins at any backoff level: if some
            // representation of this event is pinned for this role, the
            // event *is* that API and its role is already known — do not
            // relearn (or contradict) it from scores.
            if opts.exclude_seeded {
                if let Some(pinned) = reps
                    .iter()
                    .find_map(|&r| sys.lookup_var(r, role).and_then(|v| sys.pinned(v)))
                {
                    if pinned == 1.0 {
                        roles = roles.with(role);
                    }
                    continue;
                }
            }
            for (i, &rep) in reps.iter().enumerate() {
                let Some(var) = sys.lookup_var(rep, role) else { continue };
                let effective = opts.decay.powi(i as i32) * sol.score(var);
                if effective >= opts.threshold(role) {
                    roles = roles.with(role);
                    let entry = out.scores.entry((rep, role)).or_insert(0.0);
                    if effective >= *entry {
                        *entry = effective;
                        out.levels.insert((rep, role), i as u32);
                    }
                    out.spec.add(rep.as_str(), role);
                    if out.backoff_hits.len() <= i {
                        out.backoff_hits.resize(i + 1, 0);
                    }
                    out.backoff_hits[i] += 1;
                    break;
                }
            }
        }
        if !roles.is_empty() {
            out.event_roles.insert(*event, roles);
        }
    }
    out
}

/// The smallest distance between any threshold comparison [`extract`]
/// could make and its threshold — the *decision margin* of a solution.
///
/// This walks every `(event, role, backoff level)` combination the
/// extraction rule may evaluate (not stopping at the first selection, as
/// the extractor itself does: an earlier selection flipping would expose
/// later comparisons) and returns the minimum `|decay^i · score − t|`.
/// Comparisons decided by seed pins are skipped — pinned scores are
/// restored after every solver step, so they cannot differ between two
/// solves of the same system.
///
/// Warm-started solves land near, but not bit-for-bit on, the cold
/// optimum. A caller that must serve the cold solve's exact spec checks
/// this margin against the worst plausible warm-vs-cold score gap: a
/// comfortable margin proves every selection decision is insensitive to
/// that gap, so the warm extraction equals the cold one; a tight margin
/// means the decision is too close to call and the caller re-solves
/// cold. Returns `+∞` when no score-based comparison exists.
pub fn extraction_margin(
    sys: &ConstraintSystem,
    sol: &Solution,
    opts: &ExtractOptions,
) -> f64 {
    let mut margin = f64::INFINITY;
    for (_, reps) in &sys.event_reps {
        for role in Role::ALL {
            if opts.exclude_seeded
                && reps
                    .iter()
                    .any(|&r| sys.lookup_var(r, role).and_then(|v| sys.pinned(v)).is_some())
            {
                continue;
            }
            for (i, &rep) in reps.iter().enumerate() {
                let Some(var) = sys.lookup_var(rep, role) else { continue };
                if sys.pinned(var).is_some() {
                    continue;
                }
                let effective = opts.decay.powi(i as i32) * sol.score(var);
                margin = margin.min((effective - opts.threshold(role)).abs());
            }
        }
    }
    margin
}

/// Convenience: the solved score of `(rep text, role)`, if the variable
/// exists.
pub fn rep_score(sys: &ConstraintSystem, sol: &Solution, rep: &str, role: Role) -> Option<f64> {
    let id = sys.rep_id(rep)?;
    let var = sys.lookup_var(id, role)?;
    Some(sol.score(var))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::Solution;
    use seldon_constraints::RepId;

    fn mk_system() -> (ConstraintSystem, Vec<RepId>) {
        let mut sys = ConstraintSystem::new(0.75);
        let specific = sys.rep("pkg.mod.api()");
        let general = sys.rep("mod.api()");
        sys.var(specific, Role::Source);
        sys.var(general, Role::Source);
        sys.event_reps.push((EventId(0), vec![specific, general]));
        (sys, vec![specific, general])
    }

    fn solution_with(sys: &ConstraintSystem, scores: &[(usize, f64)]) -> Solution {
        let mut v = vec![0.0; sys.var_count()];
        for &(i, s) in scores {
            v[i] = s;
        }
        Solution { scores: v, ..Default::default() }
    }

    #[test]
    fn most_specific_rep_wins() {
        let (sys, _) = mk_system();
        let sol = solution_with(&sys, &[(0, 0.5), (1, 0.9)]);
        let ex = extract(&sys, &sol, &ExtractOptions::default());
        // Both qualify, but the loop stops at the first (most specific).
        assert!(ex.spec.has_role("pkg.mod.api()", Role::Source));
        assert!(!ex.spec.has_role("mod.api()", Role::Source));
        assert!(ex.event_roles[&EventId(0)].contains(Role::Source));
        assert_eq!(ex.backoff_hits, vec![1], "hit recorded at level 0");
    }

    #[test]
    fn backoff_hits_count_per_level() {
        let (sys, _) = mk_system();
        // Specific rep scores 0: selection falls through to level 1.
        let sol = solution_with(&sys, &[(0, 0.0), (1, 0.9)]);
        let ex = extract(&sys, &sol, &ExtractOptions::default());
        assert_eq!(ex.backoff_hits, vec![0, 1]);
        let rep = sys.rep_id("mod.api()").unwrap();
        assert_eq!(ex.levels[&(rep, Role::Source)], 1, "winning level recorded");
        // No qualifying rep at all: no hits recorded.
        let sol = solution_with(&sys, &[(0, 0.0), (1, 0.0)]);
        let ex = extract(&sys, &sol, &ExtractOptions::default());
        assert!(ex.backoff_hits.is_empty());
    }

    #[test]
    fn decay_penalizes_less_specific_options() {
        let (sys, _) = mk_system();
        // Specific rep scores 0, general scores 0.12: decayed 0.8·0.12 =
        // 0.096 < 0.1, so nothing is selected.
        let sol = solution_with(&sys, &[(0, 0.0), (1, 0.12)]);
        let ex = extract(&sys, &sol, &ExtractOptions::default());
        assert_eq!(ex.spec.role_count(), 0);
        assert!(ex.event_roles.is_empty());
        // At 0.13, decayed 0.104 ≥ 0.1: selected via the general rep.
        let sol = solution_with(&sys, &[(0, 0.0), (1, 0.13)]);
        let ex = extract(&sys, &sol, &ExtractOptions::default());
        assert!(ex.spec.has_role("mod.api()", Role::Source));
    }

    #[test]
    fn seeded_reps_not_relearned() {
        let (mut sys, reps) = mk_system();
        let v = sys.lookup_var(reps[0], Role::Source).unwrap();
        sys.pin(v, 1.0);
        let sol = solution_with(&sys, &[(v.index(), 1.0)]);
        let ex = extract(&sys, &sol, &ExtractOptions::default());
        assert_eq!(ex.spec.role_count(), 0, "seed entries are not learned");
        // ... but the event still carries the role for taint analysis.
        assert!(ex.event_roles[&EventId(0)].contains(Role::Source));
        // With exclude_seeded = false the entry appears.
        let ex2 = extract(
            &sys,
            &sol,
            &ExtractOptions { exclude_seeded: false, ..Default::default() },
        );
        assert!(ex2.spec.has_role("pkg.mod.api()", Role::Source));
    }

    #[test]
    fn scores_map_records_effective_score() {
        let (sys, _) = mk_system();
        let sol = solution_with(&sys, &[(0, 0.6)]);
        let ex = extract(&sys, &sol, &ExtractOptions::default());
        let rep = sys.rep_id("pkg.mod.api()").unwrap();
        let s = ex.scores[&(rep, Role::Source)];
        assert!((s - 0.6).abs() < 1e-12);
    }

    #[test]
    fn rep_score_lookup() {
        let (sys, _) = mk_system();
        let sol = solution_with(&sys, &[(0, 0.4)]);
        assert_eq!(rep_score(&sys, &sol, "pkg.mod.api()", Role::Source), Some(0.4));
        assert_eq!(rep_score(&sys, &sol, "pkg.mod.api()", Role::Sink), None);
        assert_eq!(rep_score(&sys, &sol, "missing()", Role::Source), None);
    }

    /// The margin is the distance from the closest threshold comparison,
    /// measured across *all* backoff levels, with pin-decided variables
    /// excluded.
    #[test]
    fn extraction_margin_finds_tightest_decision() {
        let (sys, _) = mk_system();
        // Level 0 at 0.35 (|0.35-0.1| = 0.25), level 1 at 0.15
        // (|0.8·0.15-0.1| = 0.02): the deeper comparison is the margin,
        // even though extraction would stop at level 0.
        let sol = solution_with(&sys, &[(0, 0.35), (1, 0.15)]);
        let m = extraction_margin(&sys, &sol, &ExtractOptions::default());
        assert!((m - 0.02).abs() < 1e-12, "margin {m}");

        // Pinning the specific rep decides Source via the seed shortcut:
        // with exclude_seeded the whole role is skipped and no score
        // comparison remains.
        let (mut sys, reps) = mk_system();
        let v = sys.lookup_var(reps[0], Role::Source).unwrap();
        sys.pin(v, 1.0);
        let sol = solution_with(&sys, &[(0, 1.0), (1, 0.100001)]);
        let m = extraction_margin(&sys, &sol, &ExtractOptions::default());
        assert_eq!(m, f64::INFINITY, "pin-decided roles carry no margin");

        // An empty system has nothing to compare.
        let empty = ConstraintSystem::new(0.75);
        let sol = Solution::default();
        assert_eq!(
            extraction_margin(&empty, &sol, &ExtractOptions::default()),
            f64::INFINITY
        );
    }

    /// An early-stopped solve extracts the same specification as the
    /// full-budget solve of the same system: on a converged trajectory
    /// the exits land in the same settled region, so the learned entries
    /// do not depend on whether the detector was enabled.
    #[test]
    fn early_stopped_solve_extracts_same_spec() {
        use crate::solve::{solve, EarlyStop, SolveOptions};
        use seldon_constraints::{FlowConstraint, Term};

        let mut sys = ConstraintSystem::new(0.75);
        let src = sys.rep("flask.request.args.get()");
        let snk = sys.rep("os.system()");
        let vsrc = sys.var(src, Role::Source);
        let vsnk = sys.var(snk, Role::Sink);
        sys.event_reps.push((EventId(0), vec![src]));
        sys.event_reps.push((EventId(1), vec![snk]));
        sys.pin(vsrc, 1.0);
        sys.add_constraint(FlowConstraint {
            lhs: vec![Term { var: vsrc, coeff: 1.0 }],
            rhs: vec![Term { var: vsnk, coeff: 1.0 }],
            ..Default::default()
        });

        let full = solve(&sys, &SolveOptions { early_stop: None, ..Default::default() });
        let early = solve(
            &sys,
            &SolveOptions { early_stop: Some(EarlyStop::default()), ..Default::default() },
        );
        let opts = ExtractOptions { exclude_seeded: false, ..Default::default() };
        let spec_full = extract(&sys, &full, &opts).spec.to_text();
        let spec_early = extract(&sys, &early, &opts).spec.to_text();
        assert_eq!(spec_full, spec_early);
        assert!(!spec_early.is_empty());
    }
}
