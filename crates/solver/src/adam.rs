//! The Adam optimizer (Kingma & Ba, 2014) with box projection.
//!
//! The paper optimizes its relaxed constraint system with TensorFlow's Adam
//! and projects variables to `[0,1]` after every step (§4.4); this is a
//! from-scratch implementation of the same update rule.

/// Adam hyperparameters.
#[derive(Debug, Clone)]
pub struct AdamConfig {
    /// Step size α.
    pub lr: f64,
    /// First-moment decay β₁.
    pub beta1: f64,
    /// Second-moment decay β₂.
    pub beta2: f64,
    /// Numerical-stability constant ε.
    pub eps: f64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig { lr: 0.05, beta1: 0.9, beta2: 0.999, eps: 1e-8 }
    }
}

impl AdamConfig {
    /// Rejects hyperparameters that poison every iterate: a NaN,
    /// non-finite, or non-positive learning rate, decay rates outside
    /// `[0, 1)` (NaN included), or a NaN/negative ε. Catching these up
    /// front lets the solver short-circuit instead of burning a full
    /// `max_iters` run plus a doomed restart.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.lr.is_finite() && self.lr > 0.0) {
            return Err(format!("learning rate must be finite and positive, got {}", self.lr));
        }
        if !(0.0..1.0).contains(&self.beta1) {
            return Err(format!("beta1 must be in [0, 1), got {}", self.beta1));
        }
        if !(0.0..1.0).contains(&self.beta2) {
            return Err(format!("beta2 must be in [0, 1), got {}", self.beta2));
        }
        if !(self.eps.is_finite() && self.eps >= 0.0) {
            return Err(format!("eps must be finite and non-negative, got {}", self.eps));
        }
        Ok(())
    }
}

/// One element of the bias-corrected Adam update with box projection.
/// `b1t`/`b2t` are the step's bias corrections `1 − βᵏᵗ`. Shared by
/// [`Adam::step_projected`] and the compiled solver kernel so the two
/// code paths can never drift arithmetically. `inline(always)` keeps the
/// per-element body fused into the solver's chunked update loop instead
/// of a call per variable.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub fn step_element(
    cfg: &AdamConfig,
    b1t: f64,
    b2t: f64,
    m: &mut f64,
    v: &mut f64,
    x: &mut f64,
    g: f64,
    lo: f64,
    hi: f64,
) {
    *m = cfg.beta1 * *m + (1.0 - cfg.beta1) * g;
    *v = cfg.beta2 * *v + (1.0 - cfg.beta2) * g * g;
    let m_hat = *m / b1t;
    let v_hat = *v / b2t;
    *x -= cfg.lr * m_hat / (v_hat.sqrt() + cfg.eps);
    *x = x.clamp(lo, hi);
}

/// Optimizer state for a fixed-size parameter vector.
#[derive(Debug, Clone)]
pub struct Adam {
    cfg: AdamConfig,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates state for `n` parameters.
    pub fn new(n: usize, cfg: AdamConfig) -> Self {
        Adam { cfg, m: vec![0.0; n], v: vec![0.0; n], t: 0 }
    }

    /// Applies one Adam step for gradient `grad`, updating `params` in
    /// place, then projects every parameter to `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grad` lengths differ from the state size.
    pub fn step_projected(&mut self, params: &mut [f64], grad: &[f64], lo: f64, hi: f64) {
        assert_eq!(params.len(), self.m.len());
        assert_eq!(grad.len(), self.m.len());
        self.t += 1;
        let Adam { cfg, m, v, t } = self;
        let b1t = 1.0 - cfg.beta1.powi(*t as i32);
        let b2t = 1.0 - cfg.beta2.powi(*t as i32);
        for ((mi, vi), (xi, gi)) in
            m.iter_mut().zip(v.iter_mut()).zip(params.iter_mut().zip(grad))
        {
            step_element(cfg, b1t, b2t, mi, vi, xi, *gi, lo, hi);
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize (x - 0.3)^2 with projection to [0, 1].
    #[test]
    fn converges_on_quadratic() {
        let mut adam = Adam::new(1, AdamConfig::default());
        let mut x = vec![1.0];
        for _ in 0..2000 {
            let g = vec![2.0 * (x[0] - 0.3)];
            adam.step_projected(&mut x, &g, 0.0, 1.0);
        }
        assert!((x[0] - 0.3).abs() < 1e-3, "x = {}", x[0]);
        assert_eq!(adam.steps(), 2000);
    }

    /// Projection keeps iterates inside the box even with a pull outside.
    #[test]
    fn projection_clamps() {
        let mut adam = Adam::new(1, AdamConfig { lr: 0.5, ..Default::default() });
        let mut x = vec![0.5];
        for _ in 0..100 {
            // Gradient always pushes upward past 1.
            let g = vec![-10.0];
            adam.step_projected(&mut x, &g, 0.0, 1.0);
            assert!((0.0..=1.0).contains(&x[0]));
        }
        assert!((x[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multi_dimensional_independent() {
        let mut adam = Adam::new(2, AdamConfig::default());
        let mut x = vec![0.0, 1.0];
        for _ in 0..3000 {
            let g = vec![2.0 * (x[0] - 0.8), 2.0 * (x[1] - 0.2)];
            adam.step_projected(&mut x, &g, 0.0, 1.0);
        }
        assert!((x[0] - 0.8).abs() < 1e-3);
        assert!((x[1] - 0.2).abs() < 1e-3);
    }

    #[test]
    fn validate_rejects_poisonous_hyperparameters() {
        assert!(AdamConfig::default().validate().is_ok());
        assert!(AdamConfig { eps: 0.0, ..Default::default() }.validate().is_ok());
        for bad in [
            AdamConfig { lr: f64::NAN, ..Default::default() },
            AdamConfig { lr: 0.0, ..Default::default() },
            AdamConfig { lr: -0.1, ..Default::default() },
            AdamConfig { lr: f64::INFINITY, ..Default::default() },
            AdamConfig { beta1: 1.0, ..Default::default() },
            AdamConfig { beta1: f64::NAN, ..Default::default() },
            AdamConfig { beta2: -0.5, ..Default::default() },
            AdamConfig { beta2: f64::NAN, ..Default::default() },
            AdamConfig { eps: f64::NAN, ..Default::default() },
            AdamConfig { eps: -1e-8, ..Default::default() },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    #[should_panic]
    fn size_mismatch_panics() {
        let mut adam = Adam::new(2, AdamConfig::default());
        let mut x = vec![0.0];
        adam.step_projected(&mut x, &[0.0], 0.0, 1.0);
    }
}
