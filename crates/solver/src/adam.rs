//! The Adam optimizer (Kingma & Ba, 2014) with box projection.
//!
//! The paper optimizes its relaxed constraint system with TensorFlow's Adam
//! and projects variables to `[0,1]` after every step (§4.4); this is a
//! from-scratch implementation of the same update rule.

/// Adam hyperparameters.
#[derive(Debug, Clone)]
pub struct AdamConfig {
    /// Step size α.
    pub lr: f64,
    /// First-moment decay β₁.
    pub beta1: f64,
    /// Second-moment decay β₂.
    pub beta2: f64,
    /// Numerical-stability constant ε.
    pub eps: f64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig { lr: 0.05, beta1: 0.9, beta2: 0.999, eps: 1e-8 }
    }
}

/// Optimizer state for a fixed-size parameter vector.
#[derive(Debug, Clone)]
pub struct Adam {
    cfg: AdamConfig,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates state for `n` parameters.
    pub fn new(n: usize, cfg: AdamConfig) -> Self {
        Adam { cfg, m: vec![0.0; n], v: vec![0.0; n], t: 0 }
    }

    /// Applies one Adam step for gradient `grad`, updating `params` in
    /// place, then projects every parameter to `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grad` lengths differ from the state size.
    pub fn step_projected(&mut self, params: &mut [f64], grad: &[f64], lo: f64, hi: f64) {
        assert_eq!(params.len(), self.m.len());
        assert_eq!(grad.len(), self.m.len());
        self.t += 1;
        let b1t = 1.0 - self.cfg.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.cfg.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.cfg.beta1 * self.m[i] + (1.0 - self.cfg.beta1) * grad[i];
            self.v[i] = self.cfg.beta2 * self.v[i] + (1.0 - self.cfg.beta2) * grad[i] * grad[i];
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            params[i] -= self.cfg.lr * m_hat / (v_hat.sqrt() + self.cfg.eps);
            params[i] = params[i].clamp(lo, hi);
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize (x - 0.3)^2 with projection to [0, 1].
    #[test]
    fn converges_on_quadratic() {
        let mut adam = Adam::new(1, AdamConfig::default());
        let mut x = vec![1.0];
        for _ in 0..2000 {
            let g = vec![2.0 * (x[0] - 0.3)];
            adam.step_projected(&mut x, &g, 0.0, 1.0);
        }
        assert!((x[0] - 0.3).abs() < 1e-3, "x = {}", x[0]);
        assert_eq!(adam.steps(), 2000);
    }

    /// Projection keeps iterates inside the box even with a pull outside.
    #[test]
    fn projection_clamps() {
        let mut adam = Adam::new(1, AdamConfig { lr: 0.5, ..Default::default() });
        let mut x = vec![0.5];
        for _ in 0..100 {
            // Gradient always pushes upward past 1.
            let g = vec![-10.0];
            adam.step_projected(&mut x, &g, 0.0, 1.0);
            assert!((0.0..=1.0).contains(&x[0]));
        }
        assert!((x[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multi_dimensional_independent() {
        let mut adam = Adam::new(2, AdamConfig::default());
        let mut x = vec![0.0, 1.0];
        for _ in 0..3000 {
            let g = vec![2.0 * (x[0] - 0.8), 2.0 * (x[1] - 0.2)];
            adam.step_projected(&mut x, &g, 0.0, 1.0);
        }
        assert!((x[0] - 0.8).abs() < 1e-3);
        assert!((x[1] - 0.2).abs() < 1e-3);
    }

    #[test]
    #[should_panic]
    fn size_mismatch_panics() {
        let mut adam = Adam::new(2, AdamConfig::default());
        let mut x = vec![0.0];
        adam.step_projected(&mut x, &[0.0], 0.0, 1.0);
    }
}
