//! An exact LP solver for the relaxed constraint system.
//!
//! The relaxation of §4.4 is a linear program:
//!
//! ```text
//! min  Σ εᵢ + λ Σ xⱼ
//! s.t. Lᵢ(x) − Rᵢ(x) − C ≤ εᵢ     (flow constraints)
//!      0 ≤ xⱼ ≤ 1, εᵢ ≥ 0          (box)
//!      pinned variables fixed       (C_known)
//! ```
//!
//! The paper solves it approximately with projected Adam; this module
//! solves it *exactly* with a dense two-phase primal simplex (Bland's rule,
//! hence guaranteed termination) so the approximate solver can be
//! cross-validated on small systems and its optimality gap measured.

use crate::solve::evaluate;
use seldon_constraints::ConstraintSystem;

/// A dense LP in the canonical form `min c·x  s.t.  A x ≤ b, x ≥ 0`.
#[derive(Debug, Clone)]
pub struct LpProblem {
    /// Number of decision variables.
    pub n: usize,
    /// Objective coefficients (length `n`).
    pub c: Vec<f64>,
    /// Constraint rows as `(sparse coefficients, rhs)`.
    pub rows: Vec<(Vec<(usize, f64)>, f64)>,
}

/// Outcome of a simplex run.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// Optimal solution found: `(x, objective)`.
    Optimal(Vec<f64>, f64),
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

/// Solves an [`LpProblem`] with the two-phase primal simplex method.
///
/// Uses Bland's anti-cycling rule, so it terminates on every input; cost is
/// exponential in the worst case but fine for the validation sizes this is
/// meant for.
pub fn simplex(lp: &LpProblem) -> LpOutcome {
    let n = lp.n;
    let m = lp.rows.len();
    // Tableau layout: columns [x (n) | slack (m) | artificial (≤m) | rhs].
    // Rows with negative rhs are negated (flipping the inequality into an
    // equality with negative slack coefficient) and given an artificial.
    let mut needs_artificial = vec![false; m];
    for (i, (_, b)) in lp.rows.iter().enumerate() {
        if *b < 0.0 {
            needs_artificial[i] = true;
        }
    }
    let n_art = needs_artificial.iter().filter(|&&x| x).count();
    let cols = n + m + n_art + 1;
    let rhs_col = cols - 1;
    let mut t = vec![vec![0.0f64; cols]; m];
    let mut basis = vec![0usize; m];
    let mut art_idx = 0usize;
    for (i, (coeffs, b)) in lp.rows.iter().enumerate() {
        let flip = if *b < 0.0 { -1.0 } else { 1.0 };
        for &(j, v) in coeffs {
            t[i][j] += flip * v;
        }
        t[i][n + i] = flip; // slack
        t[i][rhs_col] = flip * b;
        if needs_artificial[i] {
            let a_col = n + m + art_idx;
            t[i][a_col] = 1.0;
            basis[i] = a_col;
            art_idx += 1;
        } else {
            basis[i] = n + i;
        }
    }

    // Phase 1: minimize the sum of artificial variables.
    if n_art > 0 {
        let mut obj = vec![0.0f64; cols];
        for slot in obj.iter_mut().take(cols - 1).skip(n + m) {
            *slot = 1.0;
        }
        for row in 0..m {
            if basis[row] >= n + m {
                for j in 0..cols {
                    obj[j] -= t[row][j];
                }
            }
        }
        if !run_simplex(&mut t, &mut obj, &mut basis, rhs_col) {
            return LpOutcome::Unbounded; // cannot happen in phase 1
        }
        let phase1 = -obj[rhs_col];
        if phase1 > 1e-7 {
            return LpOutcome::Infeasible;
        }
        // Drive any remaining artificial variables out of the basis.
        for row in 0..m {
            if basis[row] >= n + m {
                if let Some(j) = (0..n + m).find(|&j| t[row][j].abs() > 1e-9) {
                    pivot(&mut t, &mut vec![0.0; cols], row, j, rhs_col);
                    basis[row] = j;
                }
            }
        }
    }

    // Phase 2: the real objective (in terms of non-basic variables).
    let mut obj = vec![0.0f64; cols];
    for (j, &cj) in lp.c.iter().enumerate() {
        obj[j] = cj;
    }
    // Express the objective in the current basis.
    for row in 0..m {
        let b = basis[row];
        let coef = obj[b];
        if coef.abs() > 1e-12 {
            for j in 0..cols {
                obj[j] -= coef * t[row][j];
            }
        }
    }
    // Forbid re-entering artificial columns.
    for v in &mut obj[n + m..cols - 1] {
        *v = f64::INFINITY;
    }
    if !run_simplex(&mut t, &mut obj, &mut basis, rhs_col) {
        return LpOutcome::Unbounded;
    }

    let mut x = vec![0.0f64; n];
    for row in 0..m {
        if basis[row] < n {
            x[basis[row]] = t[row][rhs_col];
        }
    }
    let objective: f64 = lp.c.iter().zip(&x).map(|(c, v)| c * v).sum();
    LpOutcome::Optimal(x, objective)
}

/// Runs simplex iterations until optimal (returns true) or unbounded
/// (returns false). Uses Bland's rule: the entering variable is the lowest
/// index with negative reduced cost, the leaving row breaks ties by lowest
/// basis index.
fn run_simplex(
    t: &mut [Vec<f64>],
    obj: &mut [f64],
    basis: &mut [usize],
    rhs_col: usize,
) -> bool {
    let m = t.len();
    loop {
        // Entering column: Bland's rule.
        let enter = match (0..rhs_col).find(|&j| obj[j] < -1e-9) {
            Some(j) => j,
            None => return true,
        };
        // Ratio test.
        let mut leave: Option<usize> = None;
        let mut best = f64::INFINITY;
        for row in 0..m {
            let a = t[row][enter];
            if a > 1e-9 {
                let ratio = t[row][rhs_col] / a;
                if ratio < best - 1e-12
                    || (ratio < best + 1e-12
                        && leave.is_some_and(|l| basis[row] < basis[l]))
                {
                    best = ratio;
                    leave = Some(row);
                }
            }
        }
        let Some(leave) = leave else { return false };
        pivot_full(t, obj, leave, enter, rhs_col);
        basis[leave] = enter;
    }
}

fn pivot_full(t: &mut [Vec<f64>], obj: &mut [f64], row: usize, col: usize, rhs_col: usize) {
    let p = t[row][col];
    for v in t[row].iter_mut().take(rhs_col + 1) {
        *v /= p;
    }
    let pivot_row: Vec<f64> = t[row][..=rhs_col].to_vec();
    for (r, tr) in t.iter_mut().enumerate() {
        if r != row {
            let f = tr[col];
            if f.abs() > 1e-12 {
                for (v, pv) in tr.iter_mut().zip(&pivot_row) {
                    *v -= f * pv;
                }
            }
        }
    }
    let f = obj[col];
    if f.abs() > 1e-12 && f.is_finite() {
        for (v, pv) in obj.iter_mut().zip(&pivot_row) {
            if v.is_finite() {
                *v -= f * pv;
            }
        }
    }
}

fn pivot(t: &mut [Vec<f64>], obj: &mut [f64], row: usize, col: usize, rhs_col: usize) {
    pivot_full(t, obj, row, col, rhs_col);
}

/// Exact solution of a [`ConstraintSystem`]'s relaxation.
#[derive(Debug, Clone)]
pub struct ExactSolution {
    /// Score per system variable (pinned values substituted back).
    pub scores: Vec<f64>,
    /// The exact optimal objective.
    pub objective: f64,
}

/// Builds the LP for `sys` and solves it exactly.
///
/// Returns `None` if the system exceeds `max_size` (free variables +
/// constraints) — the dense simplex is a validation tool, not the
/// production solver.
pub fn solve_exact(sys: &ConstraintSystem, lambda: f64, max_size: usize) -> Option<ExactSolution> {
    let n_sys = sys.var_count();
    let m = sys.constraint_count();
    // Free-variable compaction: pinned variables become constants.
    let mut free_index = vec![usize::MAX; n_sys];
    let mut pinned_value = vec![None; n_sys];
    for (v, val) in sys.pinned_vars() {
        pinned_value[v.index()] = Some(val);
    }
    let mut n_free = 0usize;
    for i in 0..n_sys {
        if pinned_value[i].is_none() {
            free_index[i] = n_free;
            n_free += 1;
        }
    }
    if n_free + m > max_size {
        return None;
    }
    // Decision vector: [x_free (n_free) | ε (m)].
    let n = n_free + m;
    let mut c = vec![0.0f64; n];
    for (i, fi) in free_index.iter().enumerate() {
        if *fi != usize::MAX {
            let _ = i;
            c[*fi] = lambda;
        }
    }
    for e in 0..m {
        c[n_free + e] = 1.0;
    }
    let mut rows: Vec<(Vec<(usize, f64)>, f64)> = Vec::new();
    // Flow constraints: Σ(lhs−rhs)·x − ε ≤ C − pinned_contribution.
    for (ci, fc) in sys.constraints.iter().enumerate() {
        let mut coeffs: Vec<(usize, f64)> = Vec::new();
        let mut rhs = sys.c;
        let add = |var: seldon_constraints::VarId, coeff: f64, coeffs: &mut Vec<(usize, f64)>, rhs: &mut f64| {
            match pinned_value[var.index()] {
                Some(v) => *rhs -= coeff * v,
                None => coeffs.push((free_index[var.index()], coeff)),
            }
        };
        for t in &fc.lhs {
            add(t.var, t.coeff, &mut coeffs, &mut rhs);
        }
        for t in &fc.rhs {
            add(t.var, -t.coeff, &mut coeffs, &mut rhs);
        }
        coeffs.push((n_free + ci, -1.0));
        rows.push((coeffs, rhs));
    }
    // Upper bounds x ≤ 1.
    for fi in 0..n_free {
        rows.push((vec![(fi, 1.0)], 1.0));
    }
    let lp = LpProblem { n, c, rows };
    match simplex(&lp) {
        LpOutcome::Optimal(x, _) => {
            let mut scores = vec![0.0f64; n_sys];
            for i in 0..n_sys {
                scores[i] = match pinned_value[i] {
                    Some(v) => v,
                    None => x[free_index[i]].clamp(0.0, 1.0),
                };
            }
            let (_, objective) = evaluate(sys, &scores, lambda);
            Some(ExactSolution { scores, objective })
        }
        // The relaxation is always feasible (ε absorbs violations) and
        // bounded (objective ≥ 0), so these cannot occur on well-formed
        // systems; surface as None defensively.
        LpOutcome::Infeasible | LpOutcome::Unbounded => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::{solve, SolveOptions};
    use seldon_constraints::{ConstraintSystem, FlowConstraint, Term};
    use seldon_specs::Role;

    #[test]
    fn toy_lp_optimal() {
        // min -2x0 - x1  s.t.  x0 + x1 ≤ 4, x0 ≤ 2, x1 ≤ 3  ⇒ -6 at (2,2).
        let lp = LpProblem {
            n: 2,
            c: vec![-2.0, -1.0],
            rows: vec![
                (vec![(0, 1.0), (1, 1.0)], 4.0),
                (vec![(0, 1.0)], 2.0),
                (vec![(1, 1.0)], 3.0),
            ],
        };
        match simplex(&lp) {
            LpOutcome::Optimal(x, obj) => {
                assert!((obj + 6.0).abs() < 1e-9, "obj = {obj}");
                assert!((x[0] - 2.0).abs() < 1e-9);
                assert!((x[1] - 2.0).abs() < 1e-9);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_detected() {
        // x0 ≤ -1 with x0 ≥ 0 is infeasible.
        let lp = LpProblem { n: 1, c: vec![1.0], rows: vec![(vec![(0, 1.0)], -1.0)] };
        assert_eq!(simplex(&lp), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x0 with no upper bound.
        let lp = LpProblem { n: 1, c: vec![-1.0], rows: vec![] };
        assert_eq!(simplex(&lp), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_two_phase() {
        // min x0  s.t.  -x0 ≤ -2  (i.e. x0 ≥ 2)  ⇒ x0 = 2.
        let lp = LpProblem { n: 1, c: vec![1.0], rows: vec![(vec![(0, -1.0)], -2.0)] };
        match simplex(&lp) {
            LpOutcome::Optimal(x, obj) => {
                assert!((x[0] - 2.0).abs() < 1e-9);
                assert!((obj - 2.0).abs() < 1e-9);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    fn san_system() -> ConstraintSystem {
        let mut sys = ConstraintSystem::new(0.75);
        let s = sys.rep("src()");
        let m = sys.rep("san()");
        let t = sys.rep("snk()");
        let vs = sys.var(s, Role::Source);
        let vm = sys.var(m, Role::Sanitizer);
        let vt = sys.var(t, Role::Sink);
        sys.pin(vs, 1.0);
        sys.pin(vt, 1.0);
        sys.add_constraint(FlowConstraint {
            lhs: vec![Term { var: vs, coeff: 1.0 }, Term { var: vt, coeff: 1.0 }],
            rhs: vec![Term { var: vm, coeff: 1.0 }],
            ..Default::default()
        });
        sys
    }

    #[test]
    fn exact_matches_analytic_optimum() {
        // src + snk ≤ san + C with both pinned 1: san must reach 1 (hinge
        // cost of leaving it lower exceeds λ). Exact optimum: san = 1,
        // objective = residual violation 0.25 plus λ over all three
        // variables (the pinned ones contribute their constant L1 mass).
        let sys = san_system();
        let exact = solve_exact(&sys, 0.1, 10_000).expect("small system solves");
        let vm = sys.lookup_var(sys.rep_id("san()").unwrap(), Role::Sanitizer).unwrap();
        assert!((exact.scores[vm.index()] - 1.0).abs() < 1e-6, "{:?}", exact.scores);
        assert!((exact.objective - (0.25 + 0.3)).abs() < 1e-6, "obj {}", exact.objective);
    }

    #[test]
    fn adam_close_to_exact() {
        let sys = san_system();
        let exact = solve_exact(&sys, 0.1, 10_000).unwrap();
        let approx = solve(&sys, &SolveOptions { max_iters: 2000, ..Default::default() });
        assert!(
            (approx.objective - exact.objective).abs() < 0.05,
            "adam {} vs exact {}",
            approx.objective,
            exact.objective
        );
    }

    #[test]
    fn exact_on_empty_system_is_zero() {
        let sys = ConstraintSystem::new(0.75);
        let e = solve_exact(&sys, 0.1, 100).unwrap();
        assert_eq!(e.objective, 0.0);
        assert!(e.scores.is_empty());
    }

    #[test]
    fn size_guard() {
        let mut sys = ConstraintSystem::new(0.75);
        for i in 0..50 {
            let r = sys.rep(&format!("v{i}()"));
            sys.var(r, Role::Source);
        }
        assert!(solve_exact(&sys, 0.1, 10).is_none());
    }

    #[test]
    fn lambda_tradeoff_in_exact_solution() {
        // With a very large λ, raising the sanitizer is more expensive than
        // accepting the violation: san stays 0.
        let sys = san_system();
        let e = solve_exact(&sys, 2.0, 10_000).unwrap();
        let vm = sys.lookup_var(sys.rep_id("san()").unwrap(), Role::Sanitizer).unwrap();
        assert!(e.scores[vm.index()] < 1e-6, "san = {}", e.scores[vm.index()]);
    }
}
