//! Pipeline errors.
//!
//! [`PipelineError`] is the full failure taxonomy of the end-to-end
//! pipeline. Under [`FaultPolicy::FailFast`](crate::FaultPolicy) these
//! surface as `Err` from [`analyze_corpus_with`](crate::analyze_corpus_with);
//! under [`FaultPolicy::Skip`](crate::FaultPolicy) the per-file variants are
//! quarantined into the [`AnalysisReport`](crate::AnalysisReport) instead.

use seldon_propgraph::BudgetExceeded;
use std::error::Error;
use std::fmt;

/// Failure of the end-to-end pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PipelineError {
    /// A corpus file failed to lex/parse.
    Parse {
        /// Path of the offending file.
        path: String,
        /// Front-end error message.
        message: String,
    },
    /// A corpus file exceeded a per-file resource budget.
    OverBudget {
        /// Path of the offending file.
        path: String,
        /// Which budget dimension tripped.
        limit: BudgetExceeded,
    },
    /// Analysis of a corpus file panicked; the panic was contained.
    Panicked {
        /// Path of the offending file.
        path: String,
        /// The panic payload, rendered as text.
        message: String,
    },
    /// An I/O failure while reading corpus input.
    Io {
        /// Path of the offending file or directory.
        path: String,
        /// The underlying I/O error message.
        message: String,
    },
    /// A project index was out of range.
    NoSuchProject(usize),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse { path, message } => {
                write!(f, "failed to parse {path}: {message}")
            }
            PipelineError::OverBudget { path, limit } => {
                write!(f, "{path} over budget: {limit}")
            }
            PipelineError::Panicked { path, message } => {
                write!(f, "analysis of {path} panicked: {message}")
            }
            PipelineError::Io { path, message } => {
                write!(f, "io error on {path}: {message}")
            }
            PipelineError::NoSuchProject(i) => write!(f, "no project with index {i}"),
        }
    }
}

impl Error for PipelineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = PipelineError::Parse { path: "a.py".into(), message: "boom".into() };
        assert_eq!(e.to_string(), "failed to parse a.py: boom");
        assert_eq!(PipelineError::NoSuchProject(3).to_string(), "no project with index 3");
    }

    #[test]
    fn display_over_budget() {
        let e = PipelineError::OverBudget {
            path: "big.py".into(),
            limit: BudgetExceeded::SourceBytes { limit: 10, actual: 20 },
        };
        assert_eq!(
            e.to_string(),
            "big.py over budget: source size 20 bytes exceeds budget of 10 bytes"
        );
    }

    #[test]
    fn display_panicked_and_io() {
        let e = PipelineError::Panicked { path: "p.py".into(), message: "overflow".into() };
        assert_eq!(e.to_string(), "analysis of p.py panicked: overflow");
        let e = PipelineError::Io { path: "dir".into(), message: "denied".into() };
        assert_eq!(e.to_string(), "io error on dir: denied");
    }
}
