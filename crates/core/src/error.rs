//! Pipeline errors.

use std::error::Error;
use std::fmt;

/// Failure of the end-to-end pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// A corpus file failed to lex/parse.
    Parse {
        /// Path of the offending file.
        path: String,
        /// Front-end error message.
        message: String,
    },
    /// A project index was out of range.
    NoSuchProject(usize),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse { path, message } => {
                write!(f, "failed to parse {path}: {message}")
            }
            PipelineError::NoSuchProject(i) => write!(f, "no project with index {i}"),
        }
    }
}

impl Error for PipelineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = PipelineError::Parse { path: "a.py".into(), message: "boom".into() };
        assert_eq!(e.to_string(), "failed to parse a.py: boom");
        assert_eq!(PipelineError::NoSuchProject(3).to_string(), "no project with index 3");
    }
}
