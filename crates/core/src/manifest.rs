//! Full-pipeline driver with telemetry: runs all eight stages — parse,
//! propgraph, union, representation, constraints, solve, extract, taint —
//! and assembles the machine-readable [`RunManifest`] the `--telemetry`
//! flag writes.
//!
//! [`run_full`] is [`analyze_corpus_with`] + [`run_seldon_traced`] plus a
//! final taint pass with the learned specification. With a recording
//! [`Telemetry`] handle in [`AnalyzeOptions`], the manifest captures the
//! corpus shape, per-file fault outcomes, every stage span with its
//! counters, the per-template constraint counts (Fig. 4a/b/c), the
//! solver's sampled convergence curve, the §7.1 extraction backoff sweep,
//! and the taint verdict. With a disabled handle the pipeline runs
//! telemetry-free and no manifest is produced.

use crate::error::PipelineError;
use crate::pipeline::{
    analyze_corpus_with, run_seldon_cached, AnalyzeOptions, AnalyzedCorpus, CheckpointUse,
    SeldonOptions, SeldonRun,
};
use crate::report::{AnalysisReport, CacheFaultReport};
use seldon_corpus::Corpus;
use seldon_specs::{Role, TaintSpec};
use seldon_taint::{TaintAnalyzer, Violation};
use seldon_constraints::constraint_gap;
use seldon_telemetry::{
    stage, CacheSummary, ConstraintSummary, CorpusShape, ExtractionSummary, MemoryGauge,
    MemorySummary, OutcomeCounts, RunManifest, ScoreDumpEntry, SolverSummary, TaintSummary,
    Telemetry,
};

/// Everything one full pipeline run produces.
#[derive(Debug)]
pub struct FullRun {
    /// The analyzed corpus (global graph + file metadata).
    pub analyzed: AnalyzedCorpus,
    /// Per-file fault/budget outcomes.
    pub report: AnalysisReport,
    /// Constraint system, solution, and extraction.
    pub run: SeldonRun,
    /// Unsanitized source→sink flows found with the seed + learned spec.
    pub violations: Vec<Violation>,
    /// How the solver warm-start checkpoint was used (outcome
    /// `Disabled` when no cache was attached).
    pub checkpoint: CheckpointUse,
    /// The assembled manifest; `None` unless the telemetry handle in
    /// [`AnalyzeOptions`] was recording.
    pub manifest: Option<RunManifest>,
}

/// Runs the complete eight-stage pipeline over `corpus` and assembles the
/// run manifest from whatever the telemetry handle recorded.
///
/// The taint stage merges the learned specification over the seed and
/// reuses the extraction's per-event role assignments, so backoff-learned
/// roles reach the analyzer even for representations below the cutoff.
///
/// # Errors
///
/// Propagates [`analyze_corpus_with`] errors (first bad file under
/// [`FaultPolicy::FailFast`](crate::FaultPolicy::FailFast)).
pub fn run_full(
    corpus: &Corpus,
    seed: &TaintSpec,
    command: &str,
    analyze: &AnalyzeOptions,
    seldon: &SeldonOptions,
) -> Result<FullRun, PipelineError> {
    let tele = analyze.telemetry.clone();
    let (analyzed, mut report) = analyze_corpus_with(corpus, analyze)?;
    let (run, checkpoint) =
        run_seldon_cached(&analyzed.graph, seed, seldon, &tele, analyze.cache.as_deref());
    report.cache_faults.extend(checkpoint.faults.iter().map(|fault| CacheFaultReport {
        path: "<checkpoint>".to_string(),
        fault: fault.clone(),
    }));

    let mut full_spec = seed.clone();
    full_spec.merge(&run.extraction.spec);
    let taint_span = tele.span(stage::TAINT);
    let analyzer =
        TaintAnalyzer::with_event_roles(&analyzed.graph, &full_spec, &run.extraction.event_roles);
    let violations = analyzer.find_violations();
    taint_span.counter("violations", violations.len() as f64);
    drop(taint_span);

    let manifest = tele.is_recording().then(|| {
        assemble_manifest(
            command,
            corpus,
            &analyzed,
            &report,
            &run,
            seldon,
            &violations,
            &tele,
            analyze,
            &checkpoint,
        )
    });
    Ok(FullRun { analyzed, report, run, violations, checkpoint, manifest })
}

/// Folds the recorded spans and pipeline artifacts into a [`RunManifest`].
/// Drains the telemetry recorder.
#[allow(clippy::too_many_arguments)]
fn assemble_manifest(
    command: &str,
    corpus: &Corpus,
    analyzed: &AnalyzedCorpus,
    report: &AnalysisReport,
    run: &SeldonRun,
    seldon: &SeldonOptions,
    violations: &[Violation],
    tele: &Telemetry,
    analyze: &AnalyzeOptions,
    checkpoint: &CheckpointUse,
) -> RunManifest {
    let mut m = RunManifest::new(command);
    m.corpus = CorpusShape {
        files: corpus.file_count() as u64,
        projects: corpus.projects.len() as u64,
        events: analyzed.graph.event_count() as u64,
        edges: analyzed.graph.edge_count() as u64,
        symbols: seldon_intern::len() as u64,
    };
    m.outcomes = OutcomeCounts {
        ok: report.ok() as u64,
        recovered: report.recovered() as u64,
        skipped: report.skipped() as u64,
        over_budget: report.over_budget() as u64,
        panicked: report.panicked() as u64,
    };
    m.stages = tele.take_spans().into_iter().map(Into::into).collect();
    m.parse_histograms = analyzed.parse_histograms.clone();
    m.constraints = match &checkpoint.summary {
        // Full checkpoint reuse: the in-memory system is empty, so the
        // shape comes from the checkpoint's replay summary.
        Some(s) => ConstraintSummary {
            total: s.constraints,
            vars: s.vars,
            pinned: s.pinned,
            by_template: s.by_template,
        },
        None => {
            let by_template = run.system.template_counts();
            ConstraintSummary {
                total: run.system.constraint_count() as u64,
                vars: run.system.var_count() as u64,
                pinned: run.system.pinned_count() as u64,
                by_template: [
                    by_template[0] as u64,
                    by_template[1] as u64,
                    by_template[2] as u64,
                ],
            }
        }
    };
    m.cache = match analyze.cache.as_deref() {
        None => CacheSummary::default(),
        Some(cache) => {
            let s = cache.stats();
            CacheSummary {
                enabled: true,
                hits: s.hits,
                misses: s.misses,
                stores: s.stores,
                corrupt: s.corrupt,
                stale: s.stale,
                evicted: s.evicted,
                checkpoint: checkpoint.outcome.label().to_string(),
            }
        }
    };
    m.solver = SolverSummary {
        iterations: run.solution.iterations as u64,
        restarts: run.solution.restarts as u64,
        diverged: run.solution.diverged,
        final_lr: run.solution.final_lr,
        objective: run.solution.objective,
        violation: run.solution.violation,
        threads: seldon.solve.threads.max(1) as u64,
        stop_reason: run.solution.stop.as_str().to_string(),
        epochs_saved: run.solution.epochs_saved as u64,
        curve: run.solution.trace.clone(),
    };
    let mut learned = [0u64; 3];
    for (_, roles) in run.extraction.spec.iter() {
        for role in Role::ALL {
            if roles.contains(role) {
                learned[role.index()] += 1;
            }
        }
    }
    m.extraction = ExtractionSummary {
        thresholds: seldon.extract.thresholds,
        decay: seldon.extract.decay,
        backoff_hits: run.extraction.backoff_hits.iter().map(|&n| n as u64).collect(),
        learned,
    };
    m.taint = TaintSummary { violations: violations.len() as u64 };
    m.memory = MemorySummary {
        tracked: true,
        current_bytes: MemoryGauge::current_bytes(),
        peak_bytes: MemoryGauge::peak_bytes(),
        peak_rss_bytes: MemoryGauge::peak_rss_bytes().unwrap_or(0),
    };
    fill_metrics(&mut m, analyzed, run, analyze, report);
    if seldon.score_dump {
        m.score_dump = score_dump(run);
    }
    m
}

/// Representation-frequency buckets: how many backoff options a
/// representation backs across the whole graph (§4.3 cutoff input).
const REP_FREQ_BOUNDS: [f64; 10] =
    [1.0, 2.0, 3.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0];

/// Constraint-gap buckets: `lhs − rhs` per constraint under the solved
/// assignment (violation is `max(0, gap − C)`, so mass above `C` ≈ 0.75
/// means unsatisfied constraints).
const GAP_BOUNDS: [f64; 10] =
    [-1.0, -0.5, -0.25, -0.1, 0.0, 0.1, 0.25, 0.5, 0.75, 1.0];

/// Populates the manifest's metrics registry from the finished pipeline
/// artifacts. Runs once per manifest — never on the per-file hot path —
/// so the no-telemetry overhead budget is untouched.
fn fill_metrics(
    m: &mut RunManifest,
    analyzed: &AnalyzedCorpus,
    run: &SeldonRun,
    analyze: &AnalyzeOptions,
    report: &AnalysisReport,
) {
    let reg = &mut m.metrics;
    reg.inc_counter(
        "files_analyzed",
        "Files that produced a propagation graph (ok + recovered).",
        false,
        (report.ok() + report.recovered()) as f64,
    );
    // Non-volatile: interning is deterministic per corpus, so two runs
    // over the same inputs must agree. In a long-lived daemon this is the
    // leak detector — repeated identical deltas must not grow it.
    reg.set_gauge(
        "intern_symbols",
        "Global interner size (symbols live for the process lifetime).",
        false,
        seldon_intern::len() as f64,
    );
    // Representation frequency distribution over the union graph: every
    // rep counted once per backoff option it appears in. Present even
    // when empty so `validate_manifest --require-full` can demand it.
    let mut rep_freq = seldon_telemetry::Histogram::new(&REP_FREQ_BOUNDS);
    for &count in analyzed.graph.rep_frequency_counts().iter().filter(|&&c| c > 0) {
        rep_freq.observe(count as f64);
    }
    reg.put_histogram(
        "rep_frequency",
        "Occurrences per representation across all backoff options (§4.3).",
        false,
        rep_freq,
    );
    // Constraint gaps under the solved assignment. A full checkpoint hit
    // replays outputs without rebuilding the system, so the distribution
    // is unavailable (and the metric absent) on that path.
    if !run.system.constraints.is_empty()
        && run.solution.scores.len() >= run.system.var_count()
    {
        for c in &run.system.constraints {
            reg.observe(
                "constraint_gap",
                "Per-constraint lhs−rhs under the solved scores (violated above C).",
                false,
                &GAP_BOUNDS,
                constraint_gap(c, &run.solution.scores),
            );
        }
    }
    if !analyzed.build_histogram.is_empty() {
        reg.put_histogram(
            "build_time_us",
            "Per-file graph-construction time (µs), analyzed files only.",
            true,
            analyzed.build_histogram.clone(),
        );
    }
    // Solver epoch timing and CSR occupancy. Rows/lanes come from the
    // compile child span; checkpoint-served solves never compiled and
    // simply omit them.
    if run.solution.iterations > 0 {
        reg.set_gauge(
            "solver_epoch_us",
            "Mean wall-clock per solver epoch (µs).",
            true,
            run.solve_time.as_micros() as f64 / run.solution.iterations as f64,
        );
        reg.set_gauge(
            "solver_iterations",
            "Projected-Adam epochs run (or replayed) this run.",
            false,
            run.solution.iterations as f64,
        );
        reg.set_gauge(
            "solver_stop_reason",
            "Stop-reason code (0 max_iters, 1 stall, 2 plateau, 3 diverged, \
             4 invalid_options).",
            false,
            run.solution.stop.code() as f64,
        );
        reg.set_gauge(
            "solver_epochs_saved",
            "Epochs the convergence exit saved against the max_iters budget.",
            false,
            run.solution.epochs_saved as f64,
        );
    }
    if let Some(compile) = m.stages.iter().find(|s| s.name == stage::COMPILE) {
        for (key, gauge, help) in [
            ("rows", "solver_rows", "CSR rows after compilation."),
            ("lanes", "solver_lanes", "SIMD lanes occupied by the CSR kernel."),
        ] {
            if let Some(&(_, v)) = compile.counters.iter().find(|(k, _)| k == key) {
                reg.set_gauge(gauge, help, false, v);
            }
        }
    }
    if let Some(cache) = analyze.cache.as_deref() {
        let s = cache.stats();
        let faults = s.corrupt + s.stale + s.evicted;
        for (name, help, v) in [
            ("cache_hits", "Artifact lookups served from the cache.", s.hits),
            ("cache_misses", "Artifact lookups that recomputed from source.", s.misses),
            ("cache_stores", "Entries written (artifacts + checkpoints).", s.stores),
            ("cache_faults", "Contained cache faults (corrupt + stale + evicted).", faults),
            ("cache_bytes_read", "Decoded payload bytes served by hits.", s.bytes_read),
            ("cache_bytes_written", "Encoded frame bytes written by stores.", s.bytes_written),
        ] {
            reg.inc_counter(name, help, true, v as f64);
        }
        let lookups = s.hits + s.misses;
        if lookups > 0 {
            reg.set_gauge(
                "cache_hit_rate",
                "hits / (hits + misses) for artifact lookups.",
                true,
                s.hits as f64 / lookups as f64,
            );
        }
    }
}

/// The Fig. 11 dataset: every learned `(rep, role)` with its effective
/// score and winning backoff level, in deterministic (rep, role) order.
fn score_dump(run: &SeldonRun) -> Vec<ScoreDumpEntry> {
    let mut entries: Vec<ScoreDumpEntry> = run
        .extraction
        .scores
        .iter()
        .map(|(&(rep, role), &score)| ScoreDumpEntry {
            rep: rep.as_str().to_string(),
            role: role.short().to_string(),
            score,
            backoff_level: u64::from(
                run.extraction.levels.get(&(rep, role)).copied().unwrap_or(0),
            ),
        })
        .collect();
    entries.sort_by(|a, b| a.rep.cmp(&b.rep).then_with(|| a.role.cmp(&b.role)));
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::FaultPolicy;
    use seldon_corpus::{generate_corpus, CorpusOptions, Universe};

    fn small_corpus() -> (Corpus, TaintSpec) {
        let universe = Universe::new();
        let corpus = generate_corpus(
            &universe,
            &CorpusOptions { projects: 6, ..Default::default() },
        );
        let seed = universe.seed_spec();
        (corpus, seed)
    }

    #[test]
    fn disabled_telemetry_produces_no_manifest() {
        let (corpus, seed) = small_corpus();
        let full = run_full(
            &corpus,
            &seed,
            "learn",
            &AnalyzeOptions::default(),
            &SeldonOptions::default(),
        )
        .unwrap();
        assert!(full.manifest.is_none());
        assert!(full.run.system.constraint_count() > 0);
    }

    #[test]
    fn recording_run_emits_complete_manifest() {
        let (corpus, seed) = small_corpus();
        let opts = AnalyzeOptions {
            policy: FaultPolicy::Recover,
            threads: 2,
            telemetry: Telemetry::recording(),
            ..Default::default()
        };
        let full =
            run_full(&corpus, &seed, "learn", &opts, &SeldonOptions::default()).unwrap();
        let m = full.manifest.expect("recording handle yields a manifest");
        assert!(m.has_all_stages(), "stages: {:?}",
            m.stages.iter().map(|s| s.name.clone()).collect::<Vec<_>>());
        assert!(!m.solver.curve.is_empty(), "default stride traces the solver");
        assert_eq!(
            m.constraints.by_template.iter().sum::<u64>(),
            m.constraints.total
        );
        assert_eq!(m.corpus.files, corpus.file_count() as u64);
        assert_eq!(m.outcomes.ok, corpus.file_count() as u64);
        // Every parsed file lands in exactly one parse-time bucket, tagged
        // by the frontend that parsed it (all Python here).
        assert_eq!(m.parse_histograms.len(), 1);
        assert_eq!(m.parse_histograms[0].frontend, "python");
        assert_eq!(m.parse_histograms[0].total(), corpus.file_count() as u64);
        // The manifest round-trips through its JSON form losslessly.
        let back = RunManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
    }
}
