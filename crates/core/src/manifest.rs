//! Full-pipeline driver with telemetry: runs all eight stages — parse,
//! propgraph, union, representation, constraints, solve, extract, taint —
//! and assembles the machine-readable [`RunManifest`] the `--telemetry`
//! flag writes.
//!
//! [`run_full`] is [`analyze_corpus_with`] + [`run_seldon_traced`] plus a
//! final taint pass with the learned specification. With a recording
//! [`Telemetry`] handle in [`AnalyzeOptions`], the manifest captures the
//! corpus shape, per-file fault outcomes, every stage span with its
//! counters, the per-template constraint counts (Fig. 4a/b/c), the
//! solver's sampled convergence curve, the §7.1 extraction backoff sweep,
//! and the taint verdict. With a disabled handle the pipeline runs
//! telemetry-free and no manifest is produced.

use crate::error::PipelineError;
use crate::pipeline::{
    analyze_corpus_with, run_seldon_cached, AnalyzeOptions, AnalyzedCorpus, CheckpointUse,
    SeldonOptions, SeldonRun,
};
use crate::report::{AnalysisReport, CacheFaultReport};
use seldon_corpus::Corpus;
use seldon_specs::{Role, TaintSpec};
use seldon_taint::{TaintAnalyzer, Violation};
use seldon_telemetry::{
    stage, CacheSummary, ConstraintSummary, CorpusShape, ExtractionSummary, OutcomeCounts,
    RunManifest, SolverSummary, TaintSummary, Telemetry,
};

/// Everything one full pipeline run produces.
#[derive(Debug)]
pub struct FullRun {
    /// The analyzed corpus (global graph + file metadata).
    pub analyzed: AnalyzedCorpus,
    /// Per-file fault/budget outcomes.
    pub report: AnalysisReport,
    /// Constraint system, solution, and extraction.
    pub run: SeldonRun,
    /// Unsanitized source→sink flows found with the seed + learned spec.
    pub violations: Vec<Violation>,
    /// How the solver warm-start checkpoint was used (outcome
    /// `Disabled` when no cache was attached).
    pub checkpoint: CheckpointUse,
    /// The assembled manifest; `None` unless the telemetry handle in
    /// [`AnalyzeOptions`] was recording.
    pub manifest: Option<RunManifest>,
}

/// Runs the complete eight-stage pipeline over `corpus` and assembles the
/// run manifest from whatever the telemetry handle recorded.
///
/// The taint stage merges the learned specification over the seed and
/// reuses the extraction's per-event role assignments, so backoff-learned
/// roles reach the analyzer even for representations below the cutoff.
///
/// # Errors
///
/// Propagates [`analyze_corpus_with`] errors (first bad file under
/// [`FaultPolicy::FailFast`](crate::FaultPolicy::FailFast)).
pub fn run_full(
    corpus: &Corpus,
    seed: &TaintSpec,
    command: &str,
    analyze: &AnalyzeOptions,
    seldon: &SeldonOptions,
) -> Result<FullRun, PipelineError> {
    let tele = analyze.telemetry.clone();
    let (analyzed, mut report) = analyze_corpus_with(corpus, analyze)?;
    let (run, checkpoint) =
        run_seldon_cached(&analyzed.graph, seed, seldon, &tele, analyze.cache.as_deref());
    report.cache_faults.extend(checkpoint.faults.iter().map(|fault| CacheFaultReport {
        path: "<checkpoint>".to_string(),
        fault: fault.clone(),
    }));

    let mut full_spec = seed.clone();
    full_spec.merge(&run.extraction.spec);
    let taint_span = tele.span(stage::TAINT);
    let analyzer =
        TaintAnalyzer::with_event_roles(&analyzed.graph, &full_spec, &run.extraction.event_roles);
    let violations = analyzer.find_violations();
    taint_span.counter("violations", violations.len() as f64);
    drop(taint_span);

    let manifest = tele.is_recording().then(|| {
        assemble_manifest(
            command,
            corpus,
            &analyzed,
            &report,
            &run,
            seldon,
            &violations,
            &tele,
            analyze,
            &checkpoint,
        )
    });
    Ok(FullRun { analyzed, report, run, violations, checkpoint, manifest })
}

/// Folds the recorded spans and pipeline artifacts into a [`RunManifest`].
/// Drains the telemetry recorder.
#[allow(clippy::too_many_arguments)]
fn assemble_manifest(
    command: &str,
    corpus: &Corpus,
    analyzed: &AnalyzedCorpus,
    report: &AnalysisReport,
    run: &SeldonRun,
    seldon: &SeldonOptions,
    violations: &[Violation],
    tele: &Telemetry,
    analyze: &AnalyzeOptions,
    checkpoint: &CheckpointUse,
) -> RunManifest {
    let mut m = RunManifest::new(command);
    m.corpus = CorpusShape {
        files: corpus.file_count() as u64,
        projects: corpus.projects.len() as u64,
        events: analyzed.graph.event_count() as u64,
        edges: analyzed.graph.edge_count() as u64,
        symbols: seldon_intern::len() as u64,
    };
    m.outcomes = OutcomeCounts {
        ok: report.ok() as u64,
        recovered: report.recovered() as u64,
        skipped: report.skipped() as u64,
        over_budget: report.over_budget() as u64,
        panicked: report.panicked() as u64,
    };
    m.stages = tele.take_spans().into_iter().map(Into::into).collect();
    m.parse_histograms = analyzed.parse_histograms.clone();
    m.constraints = match &checkpoint.summary {
        // Full checkpoint reuse: the in-memory system is empty, so the
        // shape comes from the checkpoint's replay summary.
        Some(s) => ConstraintSummary {
            total: s.constraints,
            vars: s.vars,
            pinned: s.pinned,
            by_template: s.by_template,
        },
        None => {
            let by_template = run.system.template_counts();
            ConstraintSummary {
                total: run.system.constraint_count() as u64,
                vars: run.system.var_count() as u64,
                pinned: run.system.pinned_count() as u64,
                by_template: [
                    by_template[0] as u64,
                    by_template[1] as u64,
                    by_template[2] as u64,
                ],
            }
        }
    };
    m.cache = match analyze.cache.as_deref() {
        None => CacheSummary::default(),
        Some(cache) => {
            let s = cache.stats();
            CacheSummary {
                enabled: true,
                hits: s.hits,
                misses: s.misses,
                stores: s.stores,
                corrupt: s.corrupt,
                stale: s.stale,
                evicted: s.evicted,
                checkpoint: checkpoint.outcome.label().to_string(),
            }
        }
    };
    m.solver = SolverSummary {
        iterations: run.solution.iterations as u64,
        restarts: run.solution.restarts as u64,
        diverged: run.solution.diverged,
        final_lr: run.solution.final_lr,
        objective: run.solution.objective,
        violation: run.solution.violation,
        threads: seldon.solve.threads.max(1) as u64,
        curve: run.solution.trace.clone(),
    };
    let mut learned = [0u64; 3];
    for (_, roles) in run.extraction.spec.iter() {
        for role in Role::ALL {
            if roles.contains(role) {
                learned[role.index()] += 1;
            }
        }
    }
    m.extraction = ExtractionSummary {
        thresholds: seldon.extract.thresholds,
        decay: seldon.extract.decay,
        backoff_hits: run.extraction.backoff_hits.iter().map(|&n| n as u64).collect(),
        learned,
    };
    m.taint = TaintSummary { violations: violations.len() as u64 };
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::FaultPolicy;
    use seldon_corpus::{generate_corpus, CorpusOptions, Universe};

    fn small_corpus() -> (Corpus, TaintSpec) {
        let universe = Universe::new();
        let corpus = generate_corpus(
            &universe,
            &CorpusOptions { projects: 6, ..Default::default() },
        );
        let seed = universe.seed_spec();
        (corpus, seed)
    }

    #[test]
    fn disabled_telemetry_produces_no_manifest() {
        let (corpus, seed) = small_corpus();
        let full = run_full(
            &corpus,
            &seed,
            "learn",
            &AnalyzeOptions::default(),
            &SeldonOptions::default(),
        )
        .unwrap();
        assert!(full.manifest.is_none());
        assert!(full.run.system.constraint_count() > 0);
    }

    #[test]
    fn recording_run_emits_complete_manifest() {
        let (corpus, seed) = small_corpus();
        let opts = AnalyzeOptions {
            policy: FaultPolicy::Recover,
            threads: 2,
            telemetry: Telemetry::recording(),
            ..Default::default()
        };
        let full =
            run_full(&corpus, &seed, "learn", &opts, &SeldonOptions::default()).unwrap();
        let m = full.manifest.expect("recording handle yields a manifest");
        assert!(m.has_all_stages(), "stages: {:?}",
            m.stages.iter().map(|s| s.name.clone()).collect::<Vec<_>>());
        assert!(!m.solver.curve.is_empty(), "default stride traces the solver");
        assert_eq!(
            m.constraints.by_template.iter().sum::<u64>(),
            m.constraints.total
        );
        assert_eq!(m.corpus.files, corpus.file_count() as u64);
        assert_eq!(m.outcomes.ok, corpus.file_count() as u64);
        // Every parsed file lands in exactly one parse-time bucket, tagged
        // by the frontend that parsed it (all Python here).
        assert_eq!(m.parse_histograms.len(), 1);
        assert_eq!(m.parse_histograms[0].frontend, "python");
        assert_eq!(m.parse_histograms[0].total(), corpus.file_count() as u64);
        // The manifest round-trips through its JSON form losslessly.
        let back = RunManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
    }
}
