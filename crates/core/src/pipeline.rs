//! The end-to-end Seldon pipeline (§7.1): parse a corpus of Python files,
//! extract per-file propagation graphs (in parallel), union them into the
//! global graph, generate the linear constraint system, solve it with
//! projected Adam, and extract the learned specification.
//!
//! ## Fault tolerance
//!
//! Real big-code corpora contain files that are malformed, pathological, or
//! that expose analysis bugs. [`analyze_corpus_with`] isolates every file:
//! a [`FaultPolicy`] decides whether a bad file aborts the run, is retried
//! leniently, or is quarantined; an optional per-file
//! [`Budget`](seldon_propgraph::Budget) bounds each file's cost; and a
//! panic during one file's analysis is contained and quarantines only that
//! file. The per-file verdicts come back in an
//! [`AnalysisReport`](crate::AnalysisReport).

use crate::error::PipelineError;
use crate::report::{AnalysisReport, FileOutcome, FileReport};
use seldon_constraints::{generate_with_stats, ConstraintSystem, GenOptions, GenStats};
use seldon_corpus::Corpus;
use seldon_propgraph::{
    build_source, build_source_budgeted, build_source_lenient, build_source_lenient_budgeted,
    build_source_lenient_timed, build_source_timed, Budget, BuildError, BuildTimings, FileId,
    PropagationGraph,
};
use seldon_solver::{
    extract, solve_compiled, CompiledSystem, ExtractOptions, Extraction, SolveOptions, Solution,
};
use seldon_specs::TaintSpec;
use seldon_telemetry::{stage, Telemetry};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Metadata for one analyzed file.
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// Index of the project the file belongs to.
    pub project: usize,
    /// Path within the project.
    pub path: String,
}

/// A corpus parsed and converted into a global propagation graph.
#[derive(Debug)]
pub struct AnalyzedCorpus {
    /// The global propagation graph (union of per-file graphs; event sets
    /// of different files stay disjoint, §4). Quarantined files contribute
    /// no events but keep their [`FileId`] slot in `files`.
    pub graph: PropagationGraph,
    /// Per-[`FileId`] metadata, indexed by `FileId.0`.
    pub files: Vec<FileMeta>,
    /// Wall-clock time spent parsing and building graphs.
    pub build_time: Duration,
}

impl AnalyzedCorpus {
    /// The project index of a file.
    pub fn project_of(&self, file: FileId) -> usize {
        self.files[file.0 as usize].project
    }
}

/// How the pipeline reacts to a file that cannot be analyzed cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPolicy {
    /// Abort the whole run on the first bad file (legacy behaviour).
    #[default]
    FailFast,
    /// Retry strict-parse failures with the lenient front end; quarantine
    /// only files that defeat recovery (budget trips, panics).
    Recover,
    /// Quarantine every bad file without retrying; the run always
    /// completes on whatever parses cleanly.
    Skip,
}

/// Options controlling a fault-tolerant corpus analysis.
#[derive(Debug, Clone, Default)]
pub struct AnalyzeOptions {
    /// What to do with files that fail analysis.
    pub policy: FaultPolicy,
    /// Per-file resource budget; `None` analyzes without limits.
    pub budget: Option<Budget>,
    /// Worker threads for per-file graph extraction (0 and 1 both mean
    /// sequential; union order is deterministic either way).
    pub threads: usize,
    /// Honor [`seldon_corpus::PANIC_MARKER`] by panicking inside the
    /// per-file guard. Only the fault-injection harness sets this; it
    /// exercises panic containment without a real analysis bug.
    pub fault_markers: bool,
    /// Telemetry handle for stage spans and stderr logging. The default
    /// (disabled) handle keeps the per-file path on the untimed builders —
    /// no clock reads, no allocations.
    pub telemetry: Telemetry,
}

/// Analyzes one file under the options' budget and policy. Never panics:
/// a panic inside extraction is contained and reported as
/// [`FileOutcome::Panicked`].
///
/// With active telemetry the timed builders report the parse/build phase
/// split of the successful attempt; a disabled handle stays on the untimed
/// builders (no clock reads) and the timings come back zero.
fn analyze_one(
    path: &str,
    content: &str,
    id: FileId,
    opts: &AnalyzeOptions,
) -> (Option<PropagationGraph>, FileOutcome, BuildTimings) {
    let guarded = catch_unwind(AssertUnwindSafe(|| {
        if opts.fault_markers && content.contains(seldon_corpus::PANIC_MARKER) {
            panic!("injected panic ({})", seldon_corpus::PANIC_MARKER);
        }
        let timed = opts.telemetry.is_active();
        let mut timings = BuildTimings::default();
        let strict = if timed {
            build_source_timed(content, id, opts.budget.as_ref()).map(|(g, t)| {
                timings = t;
                g
            })
        } else {
            match &opts.budget {
                Some(budget) => build_source_budgeted(content, id, budget),
                None => build_source(content, id).map_err(BuildError::Frontend),
            }
        };
        match strict {
            Ok(g) => (Some(g), FileOutcome::Ok, timings),
            Err(BuildError::OverBudget(limit)) => {
                let error = PipelineError::OverBudget { path: path.to_string(), limit };
                (None, FileOutcome::OverBudget { error }, timings)
            }
            Err(BuildError::Frontend(_)) if opts.policy == FaultPolicy::Recover => {
                // Lenient retry; only a budget trip can still fail.
                let lenient = if timed {
                    build_source_lenient_timed(content, id, opts.budget.as_ref()).map(
                        |(g, errors, t)| {
                            timings = t;
                            (g, errors)
                        },
                    )
                } else {
                    match &opts.budget {
                        Some(budget) => build_source_lenient_budgeted(content, id, budget),
                        None => Ok(build_source_lenient(content, id)),
                    }
                };
                match lenient {
                    Ok((g, errors)) => (
                        Some(g),
                        FileOutcome::Recovered { errors: errors.len().max(1) },
                        timings,
                    ),
                    Err(limit) => {
                        let error =
                            PipelineError::OverBudget { path: path.to_string(), limit };
                        (None, FileOutcome::OverBudget { error }, timings)
                    }
                }
            }
            Err(BuildError::Frontend(e)) => {
                let error = PipelineError::Parse {
                    path: path.to_string(),
                    message: e.to_string(),
                };
                (None, FileOutcome::Skipped { error }, timings)
            }
        }
    }));
    match guarded {
        Ok(result) => result,
        Err(payload) => {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            let error = PipelineError::Panicked { path: path.to_string(), message };
            (None, FileOutcome::Panicked { error }, BuildTimings::default())
        }
    }
}

/// Parses every file of `corpus` under `opts`, unions the graphs of
/// successfully analyzed files, and reports a per-file verdict for each.
///
/// File identity is stable: the [`FileId`] of every file equals its index
/// in corpus order even when earlier files are quarantined, so the union
/// order — and therefore event identity — is deterministic and independent
/// of the thread count.
///
/// # Errors
///
/// Under [`FaultPolicy::FailFast`], the error of the first (lowest-index)
/// bad file; the other policies only fail on corpus-level errors.
pub fn analyze_corpus_with(
    corpus: &Corpus,
    opts: &AnalyzeOptions,
) -> Result<(AnalyzedCorpus, AnalysisReport), PipelineError> {
    let started = Instant::now();
    let inputs: Vec<(usize, &str, &str)> = corpus
        .files()
        .map(|(project, f)| (project, f.path.as_str(), f.content.as_str()))
        .collect();
    let n = inputs.len();
    let threads = opts.threads.max(1).min(n.max(1));

    type FileSlot = (Option<PropagationGraph>, FileOutcome, BuildTimings);
    let mut slots: Vec<Option<FileSlot>> = (0..n).map(|_| None).collect();
    if threads <= 1 {
        for (i, (_, path, content)) in inputs.iter().enumerate() {
            slots[i] = Some(analyze_one(path, content, FileId(i as u32), opts));
        }
    } else {
        let chunk = n.div_ceil(threads);
        let results = Mutex::new(Vec::<(usize, FileSlot)>::new());
        std::thread::scope(|scope| {
            for (t, chunk_inputs) in inputs.chunks(chunk).enumerate() {
                let results = &results;
                scope.spawn(move || {
                    let base = t * chunk;
                    let mut local = Vec::with_capacity(chunk_inputs.len());
                    // Drain the whole chunk: a bad file never starves the
                    // files behind it of analysis.
                    for (off, (_, path, content)) in chunk_inputs.iter().enumerate() {
                        let i = base + off;
                        local.push((i, analyze_one(path, content, FileId(i as u32), opts)));
                    }
                    results
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .extend(local);
                });
            }
        });
        for (i, r) in results.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
        {
            slots[i] = Some(r);
        }
    }

    let mut graphs: Vec<Option<PropagationGraph>> = Vec::with_capacity(n);
    let mut files = Vec::with_capacity(n);
    let mut reports = Vec::with_capacity(n);
    let mut timings = BuildTimings::default();
    for (i, (project, path, _)) in inputs.iter().enumerate() {
        let (g, outcome, t) =
            slots[i].take().expect("every index 0..n is written exactly once above");
        if opts.policy == FaultPolicy::FailFast {
            // Deterministic: the lowest-index bad file wins regardless of
            // which worker finished first.
            match &outcome {
                FileOutcome::Ok | FileOutcome::Recovered { .. } => {}
                FileOutcome::Skipped { error }
                | FileOutcome::OverBudget { error }
                | FileOutcome::Panicked { error } => return Err(error.clone()),
            }
        }
        timings.add(t);
        graphs.push(g);
        files.push(FileMeta { project: *project, path: path.to_string() });
        reports.push(FileReport { project: *project, path: path.to_string(), outcome });
    }
    let tele = &opts.telemetry;
    // Parse and graph construction run per file across workers, so their
    // cost is the summed per-file time (aggregate spans), not a driver
    // wall-clock interval.
    tele.aggregate_span(stage::PARSE, timings.parse, &[("files", n as f64)]);
    let analyzed_files = reports.iter().filter(|r| r.outcome.is_analyzed()).count();
    tele.aggregate_span(
        stage::PROPGRAPH,
        timings.build,
        &[("files_analyzed", analyzed_files as f64)],
    );
    let union_span = tele.span(stage::UNION);
    let graph = union_all(&mut graphs, threads);
    union_span.counter("events", graph.event_count() as f64);
    union_span.counter("edges", graph.edge_count() as f64);
    union_span.counter("symbols", seldon_intern::len() as f64);
    drop(union_span);
    Ok((
        AnalyzedCorpus { graph, files, build_time: started.elapsed() },
        AnalysisReport { files: reports },
    ))
}

/// Folds per-file graphs into one global graph, sharded across `threads`.
///
/// `union` is an order-preserving concatenation (event ids shift by the
/// running event count), so it is associative: folding contiguous chunks
/// into per-thread shards and then folding the shards in chunk order
/// produces byte-identical event identity to the sequential left fold.
/// Each worker touches only its own chunk; the final shard merge is
/// `threads − 1` cheap bulk copies.
fn union_all(graphs: &mut [Option<PropagationGraph>], threads: usize) -> PropagationGraph {
    let total_events: usize =
        graphs.iter().map(|g| g.as_ref().map_or(0, PropagationGraph::event_count)).sum();
    let mut graph = PropagationGraph::new();
    graph.reserve_events(total_events);
    if threads <= 1 || graphs.len() <= 1 {
        for slot in graphs {
            if let Some(g) = slot.take() {
                graph.union(&g);
            }
        }
        return graph;
    }
    let chunk = graphs.len().div_ceil(threads);
    let shards: Vec<PropagationGraph> = std::thread::scope(|scope| {
        let handles: Vec<_> = graphs
            .chunks_mut(chunk)
            .map(|slots| {
                scope.spawn(move || {
                    let mut shard = PropagationGraph::new();
                    shard.reserve_events(
                        slots
                            .iter()
                            .map(|g| g.as_ref().map_or(0, PropagationGraph::event_count))
                            .sum(),
                    );
                    for slot in slots {
                        if let Some(g) = slot.take() {
                            shard.union(&g);
                        }
                    }
                    shard
                })
            })
            .collect();
        // Joining in spawn order keeps the shard sequence aligned with the
        // chunk (and therefore corpus) order.
        handles
            .into_iter()
            .map(|h| h.join().expect("shard union worker panicked"))
            .collect()
    });
    for shard in &shards {
        graph.union(shard);
    }
    graph
}

/// Parses every file of `corpus` and unions the per-file graphs.
///
/// Equivalent to [`analyze_corpus_with`] under [`FaultPolicy::FailFast`]
/// with no budget — the legacy strict pipeline.
///
/// # Errors
///
/// Returns [`PipelineError::Parse`] if any generated file fails to parse —
/// the corpus generator guarantees parseable output, so this indicates a
/// front-end bug.
pub fn analyze_corpus(corpus: &Corpus, threads: usize) -> Result<AnalyzedCorpus, PipelineError> {
    let opts = AnalyzeOptions { threads, ..AnalyzeOptions::default() };
    Ok(analyze_corpus_with(corpus, &opts)?.0)
}

/// Analyzes a single project of the corpus (used for the Q5 experiment).
///
/// # Errors
///
/// Returns [`PipelineError::Parse`] on front-end failure, or
/// [`PipelineError::NoSuchProject`] for an out-of-range index.
pub fn analyze_project(corpus: &Corpus, project: usize) -> Result<AnalyzedCorpus, PipelineError> {
    if project >= corpus.projects.len() {
        return Err(PipelineError::NoSuchProject(project));
    }
    let started = Instant::now();
    let mut graph = PropagationGraph::new();
    let mut files = Vec::new();
    for f in &corpus.projects[project].files {
        let id = FileId(files.len() as u32);
        let g = build_source(&f.content, id).map_err(|e| PipelineError::Parse {
            path: f.path.clone(),
            message: e.to_string(),
        })?;
        graph.union(&g);
        files.push(FileMeta { project, path: f.path.clone() });
    }
    Ok(AnalyzedCorpus { graph, files, build_time: started.elapsed() })
}

/// Hyperparameters of a full Seldon run; defaults follow the paper.
#[derive(Debug, Clone, Default)]
pub struct SeldonOptions {
    /// Constraint-generation options (cutoff 5, C = 0.75).
    pub gen: GenOptions,
    /// Solver options (λ = 0.1, projected Adam).
    pub solve: SolveOptions,
    /// Extraction options (t = 0.1, decay 0.8).
    pub extract: ExtractOptions,
}

/// The artifacts of a full Seldon run.
#[derive(Debug)]
pub struct SeldonRun {
    /// The generated constraint system.
    pub system: ConstraintSystem,
    /// The solved scores.
    pub solution: Solution,
    /// The extracted specification and per-event roles.
    pub extraction: Extraction,
    /// Time spent generating constraints.
    pub gen_time: Duration,
    /// Time spent solving.
    pub solve_time: Duration,
    /// Phase timings and drop counters of constraint generation.
    pub gen_stats: GenStats,
}

impl SeldonRun {
    /// Number of candidate events that entered the constraint system.
    pub fn candidate_count(&self) -> usize {
        self.system.event_reps.len()
    }
}

/// Convergence-trace stride used when telemetry records but the caller
/// left [`SolveOptions::trace_stride`] at 0: every 10th epoch plus the
/// final one — dense enough to plot, sparse enough to keep the Adam hot
/// loop cheap.
pub const DEFAULT_TRACE_STRIDE: usize = 10;

/// Runs constraint generation, solving, and extraction over a graph.
pub fn run_seldon(graph: &PropagationGraph, seed: &TaintSpec, opts: &SeldonOptions) -> SeldonRun {
    run_seldon_traced(graph, seed, opts, &Telemetry::disabled())
}

/// Like [`run_seldon`], emitting the `representation`, `constraints`,
/// `solve` (with a nested `compile` child span for the CSR lowering),
/// and `extract` stage spans on `tele`. When `tele` records and the
/// caller left the solver trace stride at 0, the stride defaults to
/// [`DEFAULT_TRACE_STRIDE`] so the manifest always carries a convergence
/// curve.
pub fn run_seldon_traced(
    graph: &PropagationGraph,
    seed: &TaintSpec,
    opts: &SeldonOptions,
    tele: &Telemetry,
) -> SeldonRun {
    let t0 = Instant::now();
    let (system, gen_stats) = generate_with_stats(graph, seed, &opts.gen);
    let gen_time = t0.elapsed();
    tele.aggregate_span(
        stage::REPRESENTATION,
        gen_stats.select_time,
        &[
            ("candidate_events", gen_stats.candidate_events as f64),
            ("surviving_reps", gen_stats.surviving_reps as f64),
            ("dropped_by_cutoff", gen_stats.dropped_by_cutoff as f64),
            ("dropped_by_blacklist", gen_stats.dropped_by_blacklist as f64),
        ],
    );
    let by_template = system.template_counts();
    tele.aggregate_span(
        stage::CONSTRAINTS,
        gen_stats.collect_time,
        &[
            ("constraints", system.constraint_count() as f64),
            ("vars", system.var_count() as f64),
            ("pinned", system.pinned_count() as f64),
            ("template_a", by_template[0] as f64),
            ("template_b", by_template[1] as f64),
            ("template_c", by_template[2] as f64),
        ],
    );

    let mut solve_opts = opts.solve.clone();
    if tele.is_recording() && solve_opts.trace_stride == 0 {
        solve_opts.trace_stride = DEFAULT_TRACE_STRIDE;
    }
    let t1 = Instant::now();
    let solve_span = tele.span(stage::SOLVE);
    let compile_span = tele.span(stage::COMPILE);
    let compiled = CompiledSystem::compile(&system);
    compile_span.counter("constraints", compiled.constraint_count() as f64);
    compile_span.counter("rows", compiled.row_count() as f64);
    compile_span.counter("terms", compiled.term_count() as f64);
    compile_span.counter("lanes", compiled.lane_count() as f64);
    drop(compile_span);
    let solution = solve_compiled(&compiled, &solve_opts);
    solve_span.counter("threads", solve_opts.threads.max(1) as f64);
    solve_span.counter("iterations", solution.iterations as f64);
    solve_span.counter("restarts", solution.restarts as f64);
    solve_span.counter("objective", solution.objective);
    solve_span.counter("violation", solution.violation);
    drop(solve_span);
    let solve_time = t1.elapsed();

    let extract_span = tele.span(stage::EXTRACT);
    let extraction = extract(&system, &solution, &opts.extract);
    extract_span.counter("learned_entries", extraction.spec.role_count() as f64);
    extract_span.counter("events_with_roles", extraction.event_roles.len() as f64);
    drop(extract_span);
    SeldonRun { system, solution, extraction, gen_time, solve_time, gen_stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldon_corpus::{generate_corpus, CorpusOptions, Project, SourceFile, Universe};

    fn corpus() -> Corpus {
        generate_corpus(
            &Universe::new(),
            &CorpusOptions { projects: 8, ..Default::default() },
        )
    }

    /// A corpus with one clean and one malformed file.
    fn mixed_corpus() -> Corpus {
        Corpus {
            projects: vec![Project {
                name: "p0".into(),
                files: vec![
                    SourceFile {
                        path: "good.py".into(),
                        content: "import flask\nx = flask.request.args.get('q')\n".into(),
                    },
                    SourceFile {
                        path: "bad.py".into(),
                        content: "def broken(:\n".into(),
                    },
                ],
            }],
            ..Default::default()
        }
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let c = corpus();
        let a = analyze_corpus(&c, 1).unwrap();
        let b = analyze_corpus(&c, 4).unwrap();
        assert_eq!(a.graph.event_count(), b.graph.event_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        assert_eq!(a.files.len(), b.files.len());
        // Event identity must match exactly (deterministic union order).
        for (id, ev) in a.graph.events() {
            assert_eq!(ev.reps, b.graph.event(id).reps);
        }
    }

    #[test]
    fn file_metadata_attributes_projects() {
        let c = corpus();
        let a = analyze_corpus(&c, 2).unwrap();
        assert_eq!(a.files.len(), c.file_count());
        let projects: std::collections::HashSet<usize> =
            a.files.iter().map(|f| f.project).collect();
        assert_eq!(projects.len(), c.projects.len());
    }

    #[test]
    fn single_project_analysis() {
        let c = corpus();
        let a = analyze_project(&c, 0).unwrap();
        assert_eq!(a.files.len(), c.projects[0].files.len());
        assert!(a.graph.event_count() > 0);
        assert!(matches!(
            analyze_project(&c, 999),
            Err(PipelineError::NoSuchProject(999))
        ));
    }

    #[test]
    fn failfast_aborts_on_malformed_file() {
        let c = mixed_corpus();
        let err = analyze_corpus(&c, 1).unwrap_err();
        assert!(matches!(err, PipelineError::Parse { ref path, .. } if path == "bad.py"));
        // Same error regardless of thread count.
        assert_eq!(err, analyze_corpus(&c, 4).unwrap_err());
    }

    #[test]
    fn skip_quarantines_malformed_file() {
        let c = mixed_corpus();
        let opts = AnalyzeOptions { policy: FaultPolicy::Skip, ..Default::default() };
        let (analyzed, report) = analyze_corpus_with(&c, &opts).unwrap();
        assert_eq!(analyzed.files.len(), 2, "quarantined files keep their FileId slot");
        assert!(analyzed.graph.event_count() > 0);
        assert_eq!(report.ok(), 1);
        assert_eq!(report.skipped(), 1);
        assert!(report.is_degraded());
        let quarantined: Vec<&str> =
            report.quarantined().map(|f| f.path.as_str()).collect();
        assert_eq!(quarantined, ["bad.py"]);
    }

    #[test]
    fn recover_retries_malformed_file() {
        let c = mixed_corpus();
        let opts = AnalyzeOptions { policy: FaultPolicy::Recover, ..Default::default() };
        let (analyzed, report) = analyze_corpus_with(&c, &opts).unwrap();
        assert_eq!(report.ok(), 1);
        assert_eq!(report.recovered(), 1);
        assert_eq!(report.quarantined().count(), 0);
        assert_eq!(analyzed.files.len(), 2);
    }

    #[test]
    fn recover_equals_failfast_on_clean_corpus() {
        let c = corpus();
        let strict = analyze_corpus(&c, 2).unwrap();
        let opts = AnalyzeOptions {
            policy: FaultPolicy::Recover,
            threads: 2,
            ..Default::default()
        };
        let (lenient, report) = analyze_corpus_with(&c, &opts).unwrap();
        assert!(!report.is_degraded());
        assert_eq!(strict.graph.event_count(), lenient.graph.event_count());
        assert_eq!(strict.graph.edge_count(), lenient.graph.edge_count());
        for (id, ev) in strict.graph.events() {
            assert_eq!(ev.reps, lenient.graph.event(id).reps);
        }
    }

    #[test]
    fn budget_quarantines_oversized_file() {
        let mut c = mixed_corpus();
        c.projects[0].files[1] = SourceFile {
            path: "huge.py".into(),
            content: format!("# {}\n", "x".repeat(4096)),
        };
        let opts = AnalyzeOptions {
            policy: FaultPolicy::Skip,
            budget: Some(Budget { max_source_bytes: 1024, ..Budget::default() }),
            ..Default::default()
        };
        let (_, report) = analyze_corpus_with(&c, &opts).unwrap();
        assert_eq!(report.over_budget(), 1);
        assert!(matches!(
            report.files[1].outcome,
            FileOutcome::OverBudget {
                error: PipelineError::OverBudget { .. }
            }
        ));
    }

    #[test]
    fn panic_marker_is_contained_under_skip() {
        let mut c = mixed_corpus();
        c.projects[0].files[1] = SourceFile {
            path: "panics.py".into(),
            content: format!("x = 1\n{}\n", seldon_corpus::PANIC_MARKER),
        };
        let opts = AnalyzeOptions {
            policy: FaultPolicy::Skip,
            fault_markers: true,
            ..Default::default()
        };
        let (analyzed, report) = analyze_corpus_with(&c, &opts).unwrap();
        assert_eq!(report.panicked(), 1);
        assert_eq!(report.ok(), 1);
        assert!(analyzed.graph.event_count() > 0);
    }

    #[test]
    fn full_run_learns_something() {
        let c = corpus();
        let analyzed = analyze_corpus(&c, 2).unwrap();
        let universe = Universe::new();
        let seed = universe.seed_spec();
        let run = run_seldon(&analyzed.graph, &seed, &SeldonOptions::default());
        assert!(run.system.constraint_count() > 0, "no constraints generated");
        assert!(run.candidate_count() > 0);
        assert!(
            run.extraction.spec.role_count() > 0,
            "nothing learned from {} constraints over {} vars",
            run.system.constraint_count(),
            run.system.var_count()
        );
    }

    #[test]
    fn empty_seed_learns_nothing() {
        let c = corpus();
        let analyzed = analyze_corpus(&c, 2).unwrap();
        let run = run_seldon(&analyzed.graph, &TaintSpec::new(), &SeldonOptions::default());
        assert_eq!(
            run.extraction.spec.role_count(),
            0,
            "empty seed must yield the all-zeros solution (paper Q6)"
        );
    }
}
