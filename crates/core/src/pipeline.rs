//! The end-to-end Seldon pipeline (§7.1): parse a corpus of Python files,
//! extract per-file propagation graphs (in parallel), union them into the
//! global graph, generate the linear constraint system, solve it with
//! projected Adam, and extract the learned specification.

use crate::error::PipelineError;
use seldon_constraints::{generate, ConstraintSystem, GenOptions};
use seldon_corpus::Corpus;
use seldon_propgraph::{build_source, FileId, PropagationGraph};
use seldon_solver::{extract, solve, ExtractOptions, Extraction, SolveOptions, Solution};
use seldon_specs::TaintSpec;
use std::time::{Duration, Instant};

/// Metadata for one analyzed file.
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// Index of the project the file belongs to.
    pub project: usize,
    /// Path within the project.
    pub path: String,
}

/// A corpus parsed and converted into a global propagation graph.
#[derive(Debug)]
pub struct AnalyzedCorpus {
    /// The global propagation graph (union of per-file graphs; event sets
    /// of different files stay disjoint, §4).
    pub graph: PropagationGraph,
    /// Per-[`FileId`] metadata, indexed by `FileId.0`.
    pub files: Vec<FileMeta>,
    /// Wall-clock time spent parsing and building graphs.
    pub build_time: Duration,
}

impl AnalyzedCorpus {
    /// The project index of a file.
    pub fn project_of(&self, file: FileId) -> usize {
        self.files[file.0 as usize].project
    }
}

/// Parses every file of `corpus` and unions the per-file graphs.
///
/// Per-file graph extraction runs on `threads` worker threads (pass 1 for
/// deterministic single-threaded runs; the union order is deterministic
/// either way).
///
/// # Errors
///
/// Returns [`PipelineError::Parse`] if any generated file fails to parse —
/// the corpus generator guarantees parseable output, so this indicates a
/// front-end bug.
pub fn analyze_corpus(corpus: &Corpus, threads: usize) -> Result<AnalyzedCorpus, PipelineError> {
    let started = Instant::now();
    let inputs: Vec<(usize, &str, &str)> = corpus
        .files()
        .map(|(project, f)| (project, f.path.as_str(), f.content.as_str()))
        .collect();
    let n = inputs.len();
    let threads = threads.max(1).min(n.max(1));

    let mut slots: Vec<Option<PropagationGraph>> = (0..n).map(|_| None).collect();
    if threads <= 1 {
        for (i, (_, path, content)) in inputs.iter().enumerate() {
            let g = build_source(content, FileId(i as u32))
                .map_err(|e| PipelineError::Parse { path: path.to_string(), message: e.to_string() })?;
            slots[i] = Some(g);
        }
    } else {
        let chunk = n.div_ceil(threads);
        let results = parking_lot::Mutex::new(Vec::<(usize, Result<PropagationGraph, PipelineError>)>::new());
        crossbeam::scope(|scope| {
            for (t, chunk_inputs) in inputs.chunks(chunk).enumerate() {
                let results = &results;
                scope.spawn(move |_| {
                    let base = t * chunk;
                    let mut local = Vec::with_capacity(chunk_inputs.len());
                    for (off, (_, path, content)) in chunk_inputs.iter().enumerate() {
                        let i = base + off;
                        let r = build_source(content, FileId(i as u32)).map_err(|e| {
                            PipelineError::Parse {
                                path: path.to_string(),
                                message: e.to_string(),
                            }
                        });
                        local.push((i, r));
                    }
                    results.lock().extend(local);
                });
            }
        })
        .expect("scoped threads do not panic");
        for (i, r) in results.into_inner() {
            slots[i] = Some(r?);
        }
    }

    let mut graph = PropagationGraph::new();
    let mut files = Vec::with_capacity(n);
    for (i, (project, path, _)) in inputs.iter().enumerate() {
        let g = slots[i].take().expect("all slots filled");
        graph.union(&g);
        files.push(FileMeta { project: *project, path: path.to_string() });
    }
    Ok(AnalyzedCorpus { graph, files, build_time: started.elapsed() })
}

/// Analyzes a single project of the corpus (used for the Q5 experiment).
///
/// # Errors
///
/// Returns [`PipelineError::Parse`] on front-end failure, or
/// [`PipelineError::NoSuchProject`] for an out-of-range index.
pub fn analyze_project(corpus: &Corpus, project: usize) -> Result<AnalyzedCorpus, PipelineError> {
    if project >= corpus.projects.len() {
        return Err(PipelineError::NoSuchProject(project));
    }
    let started = Instant::now();
    let mut graph = PropagationGraph::new();
    let mut files = Vec::new();
    for f in &corpus.projects[project].files {
        let id = FileId(files.len() as u32);
        let g = build_source(&f.content, id).map_err(|e| PipelineError::Parse {
            path: f.path.clone(),
            message: e.to_string(),
        })?;
        graph.union(&g);
        files.push(FileMeta { project, path: f.path.clone() });
    }
    Ok(AnalyzedCorpus { graph, files, build_time: started.elapsed() })
}

/// Hyperparameters of a full Seldon run; defaults follow the paper.
#[derive(Debug, Clone, Default)]
pub struct SeldonOptions {
    /// Constraint-generation options (cutoff 5, C = 0.75).
    pub gen: GenOptions,
    /// Solver options (λ = 0.1, projected Adam).
    pub solve: SolveOptions,
    /// Extraction options (t = 0.1, decay 0.8).
    pub extract: ExtractOptions,
}

/// The artifacts of a full Seldon run.
#[derive(Debug)]
pub struct SeldonRun {
    /// The generated constraint system.
    pub system: ConstraintSystem,
    /// The solved scores.
    pub solution: Solution,
    /// The extracted specification and per-event roles.
    pub extraction: Extraction,
    /// Time spent generating constraints.
    pub gen_time: Duration,
    /// Time spent solving.
    pub solve_time: Duration,
}

impl SeldonRun {
    /// Number of candidate events that entered the constraint system.
    pub fn candidate_count(&self) -> usize {
        self.system.event_reps.len()
    }
}

/// Runs constraint generation, solving, and extraction over a graph.
pub fn run_seldon(graph: &PropagationGraph, seed: &TaintSpec, opts: &SeldonOptions) -> SeldonRun {
    let t0 = Instant::now();
    let system = generate(graph, seed, &opts.gen);
    let gen_time = t0.elapsed();
    let t1 = Instant::now();
    let solution = solve(&system, &opts.solve);
    let solve_time = t1.elapsed();
    let extraction = extract(&system, &solution, &opts.extract);
    SeldonRun { system, solution, extraction, gen_time, solve_time }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldon_corpus::{generate_corpus, CorpusOptions, Universe};

    fn corpus() -> Corpus {
        generate_corpus(
            &Universe::new(),
            &CorpusOptions { projects: 8, ..Default::default() },
        )
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let c = corpus();
        let a = analyze_corpus(&c, 1).unwrap();
        let b = analyze_corpus(&c, 4).unwrap();
        assert_eq!(a.graph.event_count(), b.graph.event_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        assert_eq!(a.files.len(), b.files.len());
        // Event identity must match exactly (deterministic union order).
        for (id, ev) in a.graph.events() {
            assert_eq!(ev.reps, b.graph.event(id).reps);
        }
    }

    #[test]
    fn file_metadata_attributes_projects() {
        let c = corpus();
        let a = analyze_corpus(&c, 2).unwrap();
        assert_eq!(a.files.len(), c.file_count());
        let projects: std::collections::HashSet<usize> =
            a.files.iter().map(|f| f.project).collect();
        assert_eq!(projects.len(), c.projects.len());
    }

    #[test]
    fn single_project_analysis() {
        let c = corpus();
        let a = analyze_project(&c, 0).unwrap();
        assert_eq!(a.files.len(), c.projects[0].files.len());
        assert!(a.graph.event_count() > 0);
        assert!(matches!(
            analyze_project(&c, 999),
            Err(PipelineError::NoSuchProject(999))
        ));
    }

    #[test]
    fn full_run_learns_something() {
        let c = corpus();
        let analyzed = analyze_corpus(&c, 2).unwrap();
        let universe = Universe::new();
        let seed = universe.seed_spec();
        let run = run_seldon(&analyzed.graph, &seed, &SeldonOptions::default());
        assert!(run.system.constraint_count() > 0, "no constraints generated");
        assert!(run.candidate_count() > 0);
        assert!(
            run.extraction.spec.role_count() > 0,
            "nothing learned from {} constraints over {} vars",
            run.system.constraint_count(),
            run.system.var_count()
        );
    }

    #[test]
    fn empty_seed_learns_nothing() {
        let c = corpus();
        let analyzed = analyze_corpus(&c, 2).unwrap();
        let run = run_seldon(&analyzed.graph, &TaintSpec::new(), &SeldonOptions::default());
        assert_eq!(
            run.extraction.spec.role_count(),
            0,
            "empty seed must yield the all-zeros solution (paper Q6)"
        );
    }
}
