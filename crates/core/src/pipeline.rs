//! The end-to-end Seldon pipeline (§7.1): parse a corpus of source files
//! (Python by default, JS-like for `.js` paths — see [`Frontend`]),
//! extract per-file propagation graphs (in parallel), union them into the
//! global graph, generate the linear constraint system, solve it with
//! projected Adam, and extract the learned specification. Everything past
//! per-file lowering is language-blind.
//!
//! ## Fault tolerance
//!
//! Real big-code corpora contain files that are malformed, pathological, or
//! that expose analysis bugs. [`analyze_corpus_with`] isolates every file:
//! a [`FaultPolicy`] decides whether a bad file aborts the run, is retried
//! leniently, or is quarantined; an optional per-file
//! [`Budget`](seldon_propgraph::Budget) bounds each file's cost; and a
//! panic during one file's analysis is contained and quarantines only that
//! file. The per-file verdicts come back in an
//! [`AnalysisReport`](crate::AnalysisReport).

use crate::error::PipelineError;
use crate::report::{AnalysisReport, CacheFaultReport, FileOutcome, FileReport};
use seldon_cache::{
    file_key, graph_fingerprint, input_fingerprint, system_fingerprint, ArtifactCache,
    ArtifactLookup, CacheFault, Checkpoint, CheckpointLookup, FaultClass, Fnv64, SystemSummary,
    CHECKPOINT_NAME,
};
use seldon_constraints::{generate_with_stats, ConstraintSystem, GenOptions, GenStats};
use seldon_corpus::Corpus;
use seldon_jsfront::{
    build_js_source, build_js_source_budgeted, build_js_source_lenient,
    build_js_source_lenient_budgeted, build_js_source_lenient_timed, build_js_source_timed,
};
use seldon_propgraph::{
    build_source, build_source_budgeted, build_source_lenient, build_source_lenient_budgeted,
    build_source_lenient_timed, build_source_timed, Budget, BuildError, BuildTimings, FileId,
    PropagationGraph,
};
use seldon_solver::{
    extract, extraction_margin, solve_compiled, solve_compiled_warm, CompiledSystem,
    ExtractOptions, Extraction, SolveOptions, Solution, StopReason,
};
use seldon_specs::TaintSpec;
use seldon_telemetry::{stage, Histogram, ParseHistogram, Telemetry, PARSE_HIST_BOUNDS};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Which language frontend analyzes a file, decided by its extension.
///
/// Everything past the IR boundary — graph construction, representations,
/// constraints, solver, extraction, taint — is language-blind; the
/// frontend choice only selects which lowering pass produces the
/// [`seldon_ir::IrProgram`](seldon_ir) trace for a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Frontend {
    /// The Python frontend (`seldon-pyast` lexer/parser + Python
    /// lowering). The default for every extension other than `.js`.
    #[default]
    Python,
    /// The JS-like frontend (`seldon-jsfront`).
    Js,
}

impl Frontend {
    /// Picks the frontend for a file path: `.js` files go to the JS
    /// frontend, everything else to Python.
    pub fn of_path(path: &str) -> Frontend {
        if Path::new(path).extension().is_some_and(|e| e == "js") {
            Frontend::Js
        } else {
            Frontend::Python
        }
    }

    /// Stable tag mixed into [`file_key`] so byte-identical sources
    /// analyzed by different frontends never alias a cached artifact.
    pub fn salt_tag(self) -> u64 {
        match self {
            Frontend::Python => 0,
            Frontend::Js => 1,
        }
    }

    /// Manifest/telemetry label.
    pub fn label(self) -> &'static str {
        match self {
            Frontend::Python => "python",
            Frontend::Js => "js",
        }
    }

    /// Dense index for per-frontend arrays.
    fn index(self) -> usize {
        self.salt_tag() as usize
    }

    /// All frontends, indexed by [`Frontend::index`].
    const ALL: [Frontend; 2] = [Frontend::Python, Frontend::Js];
}

/// Metadata for one analyzed file.
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// Index of the project the file belongs to.
    pub project: usize,
    /// Path within the project.
    pub path: String,
}

/// A corpus parsed and converted into a global propagation graph.
#[derive(Debug)]
pub struct AnalyzedCorpus {
    /// The global propagation graph (union of per-file graphs; event sets
    /// of different files stay disjoint, §4). Quarantined files contribute
    /// no events but keep their [`FileId`] slot in `files`.
    pub graph: PropagationGraph,
    /// Per-[`FileId`] metadata, indexed by `FileId.0`.
    pub files: Vec<FileMeta>,
    /// Wall-clock time spent parsing and building graphs.
    pub build_time: Duration,
    /// Per-frontend parse-time buckets. Only populated when the analysis
    /// ran with active telemetry (the untimed builders read no clocks) and
    /// only for frontends that parsed at least one file; cache-served
    /// files skip the front end and are never tallied.
    pub parse_histograms: Vec<ParseHistogram>,
    /// Per-file graph-construction time distribution (microseconds, same
    /// buckets as the parse histograms). Empty unless telemetry was active
    /// during analysis; cache-served files skip construction and are never
    /// tallied.
    pub build_histogram: Histogram,
}

impl AnalyzedCorpus {
    /// The project index of a file.
    pub fn project_of(&self, file: FileId) -> usize {
        self.files[file.0 as usize].project
    }
}

/// How the pipeline reacts to a file that cannot be analyzed cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPolicy {
    /// Abort the whole run on the first bad file (legacy behaviour).
    #[default]
    FailFast,
    /// Retry strict-parse failures with the lenient front end; quarantine
    /// only files that defeat recovery (budget trips, panics).
    Recover,
    /// Quarantine every bad file without retrying; the run always
    /// completes on whatever parses cleanly.
    Skip,
}

/// Options controlling a fault-tolerant corpus analysis.
#[derive(Debug, Clone, Default)]
pub struct AnalyzeOptions {
    /// What to do with files that fail analysis.
    pub policy: FaultPolicy,
    /// Per-file resource budget; `None` analyzes without limits.
    pub budget: Option<Budget>,
    /// Worker threads for per-file graph extraction (0 and 1 both mean
    /// sequential; union order is deterministic either way).
    pub threads: usize,
    /// Honor [`seldon_corpus::PANIC_MARKER`] by panicking inside the
    /// per-file guard. Only the fault-injection harness sets this; it
    /// exercises panic containment without a real analysis bug.
    pub fault_markers: bool,
    /// Telemetry handle for stage spans and stderr logging. The default
    /// (disabled) handle keeps the per-file path on the untimed builders —
    /// no clock reads, no allocations.
    pub telemetry: Telemetry,
    /// On-disk artifact cache. When attached, per-file analysis is served
    /// from validated cache entries where possible and recomputed (then
    /// stored) otherwise; every detected cache fault is contained,
    /// quarantined, and reported in
    /// [`AnalysisReport::cache_faults`](crate::AnalysisReport). `None`
    /// analyzes everything from source.
    pub cache: Option<Arc<ArtifactCache>>,
}

/// Folds every analysis option that changes what a file's cached artifact
/// *is* — the fault policy decides strict-vs-lenient graphs, the budget
/// decides quarantine outcomes, and fault markers decide injected panics —
/// into the [`file_key`] salt, so entries from different configurations
/// can never satisfy each other.
fn option_salt(opts: &AnalyzeOptions) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(match opts.policy {
        FaultPolicy::FailFast => 0,
        FaultPolicy::Recover => 1,
        FaultPolicy::Skip => 2,
    });
    match &opts.budget {
        None => {
            h.write_u64(0);
        }
        Some(b) => {
            h.write_u64(1)
                .write_u64(b.max_source_bytes as u64)
                .write_u64(b.max_statements as u64)
                .write_u64(b.max_depth as u64);
            // The wall deadline makes outcomes timing-dependent; fold it in
            // so runs with different deadlines never share entries.
            match b.max_wall {
                None => h.write_u64(0),
                Some(d) => h.write_u64(1).write_u64(d.as_nanos() as u64),
            };
        }
    }
    h.write_u64(u64::from(opts.fault_markers));
    h.finish()
}

/// Analyzes one file under the options' budget and policy. Never panics:
/// a panic inside extraction is contained and reported as
/// [`FileOutcome::Panicked`].
///
/// With active telemetry the timed builders report the parse/build phase
/// split of the successful attempt; a disabled handle stays on the untimed
/// builders (no clock reads) and the timings come back zero.
fn analyze_one(
    path: &str,
    content: &str,
    id: FileId,
    frontend: Frontend,
    opts: &AnalyzeOptions,
) -> (Option<PropagationGraph>, FileOutcome, BuildTimings) {
    let guarded = catch_unwind(AssertUnwindSafe(|| {
        if opts.fault_markers && content.contains(seldon_corpus::PANIC_MARKER) {
            panic!("injected panic ({})", seldon_corpus::PANIC_MARKER);
        }
        let timed = opts.telemetry.is_active();
        let mut timings = BuildTimings::default();
        let strict = if timed {
            match frontend {
                Frontend::Python => build_source_timed(content, id, opts.budget.as_ref()),
                Frontend::Js => build_js_source_timed(content, id, opts.budget.as_ref()),
            }
            .map(|(g, t)| {
                timings = t;
                g
            })
        } else {
            match (&opts.budget, frontend) {
                (Some(budget), Frontend::Python) => build_source_budgeted(content, id, budget),
                (Some(budget), Frontend::Js) => build_js_source_budgeted(content, id, budget),
                (None, Frontend::Python) => {
                    build_source(content, id).map_err(BuildError::Frontend)
                }
                (None, Frontend::Js) => {
                    build_js_source(content, id).map_err(BuildError::Frontend)
                }
            }
        };
        match strict {
            Ok(g) => (Some(g), FileOutcome::Ok, timings),
            Err(BuildError::OverBudget(limit)) => {
                let error = PipelineError::OverBudget { path: path.to_string(), limit };
                (None, FileOutcome::OverBudget { error }, timings)
            }
            Err(BuildError::Frontend(_)) if opts.policy == FaultPolicy::Recover => {
                // Lenient retry; only a budget trip can still fail.
                let lenient = if timed {
                    match frontend {
                        Frontend::Python => {
                            build_source_lenient_timed(content, id, opts.budget.as_ref())
                        }
                        Frontend::Js => {
                            build_js_source_lenient_timed(content, id, opts.budget.as_ref())
                        }
                    }
                    .map(|(g, errors, t)| {
                        timings = t;
                        (g, errors)
                    })
                } else {
                    match (&opts.budget, frontend) {
                        (Some(budget), Frontend::Python) => {
                            build_source_lenient_budgeted(content, id, budget)
                        }
                        (Some(budget), Frontend::Js) => {
                            build_js_source_lenient_budgeted(content, id, budget)
                        }
                        (None, Frontend::Python) => Ok(build_source_lenient(content, id)),
                        (None, Frontend::Js) => Ok(build_js_source_lenient(content, id)),
                    }
                };
                match lenient {
                    Ok((g, errors)) => (
                        Some(g),
                        FileOutcome::Recovered { errors: errors.len().max(1) },
                        timings,
                    ),
                    Err(limit) => {
                        let error =
                            PipelineError::OverBudget { path: path.to_string(), limit };
                        (None, FileOutcome::OverBudget { error }, timings)
                    }
                }
            }
            Err(BuildError::Frontend(e)) => {
                let error = PipelineError::Parse {
                    path: path.to_string(),
                    message: e.to_string(),
                };
                (None, FileOutcome::Skipped { error }, timings)
            }
        }
    }));
    match guarded {
        Ok(result) => result,
        Err(payload) => {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            let error = PipelineError::Panicked { path: path.to_string(), message };
            (None, FileOutcome::Panicked { error }, BuildTimings::default())
        }
    }
}

/// Everything one file's (possibly cached) analysis produced.
struct FileSlot {
    graph: Option<PropagationGraph>,
    outcome: FileOutcome,
    timings: BuildTimings,
    /// Which frontend (was or would have been) used for this file.
    frontend: Frontend,
    /// Wall-clock spent on cache lookup + store for this file.
    cache_time: Duration,
    /// Cache faults hit while serving this file (lookup and/or store).
    faults: Vec<CacheFault>,
    /// Whether the graph came from a validated cache entry (no parse ran).
    from_cache: bool,
}

/// [`analyze_one`] behind the artifact cache: a validated entry skips the
/// front end entirely; a miss (or any contained fault) recomputes and
/// stores the fresh artifact. Only analyzed outcomes are cached —
/// quarantine verdicts are cheap to re-derive and keeping them out of the
/// store means a fixed budget or policy never serves a stale verdict.
fn analyze_one_cached(
    path: &str,
    content: &str,
    id: FileId,
    opts: &AnalyzeOptions,
    salt: u64,
) -> FileSlot {
    let frontend = Frontend::of_path(path);
    let Some(cache) = opts.cache.as_deref() else {
        let (graph, outcome, timings) = analyze_one(path, content, id, frontend, opts);
        return FileSlot {
            graph,
            outcome,
            timings,
            frontend,
            cache_time: Duration::ZERO,
            faults: Vec::new(),
            from_cache: false,
        };
    };
    let key = file_key(content, salt, frontend.salt_tag());
    let mut faults = Vec::new();
    let t0 = Instant::now();
    let looked = cache.load_artifact(key, id);
    let mut cache_time = t0.elapsed();
    match looked {
        ArtifactLookup::Hit(graph, recovered) => {
            let outcome = if recovered == 0 {
                FileOutcome::Ok
            } else {
                FileOutcome::Recovered { errors: recovered }
            };
            return FileSlot {
                graph: Some(graph),
                outcome,
                timings: BuildTimings::default(),
                frontend,
                cache_time,
                faults,
                from_cache: true,
            };
        }
        ArtifactLookup::Miss => {}
        ArtifactLookup::Fault(f) => faults.push(f),
    }
    let (graph, outcome, timings) = analyze_one(path, content, id, frontend, opts);
    if let Some(g) = &graph {
        let recovered = match &outcome {
            FileOutcome::Recovered { errors } => *errors,
            _ => 0,
        };
        let t1 = Instant::now();
        if let Some(f) = cache.store_artifact(key, g, recovered) {
            faults.push(f);
        }
        cache_time += t1.elapsed();
    }
    FileSlot { graph, outcome, timings, frontend, cache_time, faults, from_cache: false }
}

/// One file's (possibly cached) analysis, as returned by [`analyze_file`].
#[derive(Debug)]
pub struct FileAnalysis {
    /// The file's propagation graph, stamped with the requested
    /// [`FileId`]; `None` when the file was quarantined.
    pub graph: Option<PropagationGraph>,
    /// The per-file verdict (ok, recovered, skipped, over budget,
    /// panicked).
    pub outcome: FileOutcome,
    /// Whether the graph came from a validated cache entry (no parse
    /// ran).
    pub from_cache: bool,
    /// Contained cache faults hit serving this file.
    pub faults: Vec<CacheFault>,
}

/// Analyzes a single file exactly as [`analyze_corpus_with`] would —
/// same budget/policy guard rails, same artifact-cache keying — without
/// requiring the rest of the corpus. This is the unit of re-work for the
/// incremental daemon: on a delta, only the touched files go through
/// here; every untouched file keeps its previous graph.
pub fn analyze_file(path: &str, content: &str, id: FileId, opts: &AnalyzeOptions) -> FileAnalysis {
    let salt = if opts.cache.is_some() { option_salt(opts) } else { 0 };
    let slot = analyze_one_cached(path, content, id, opts, salt);
    FileAnalysis {
        graph: slot.graph,
        outcome: slot.outcome,
        from_cache: slot.from_cache,
        faults: slot.faults,
    }
}

/// The artifact-cache key [`analyze_file`] files this path/content under
/// for `opts` — exposed so a caller that knows a file left the corpus can
/// [`ArtifactCache::evict`] its entry (content keys of deleted files are
/// never looked up again, so nothing else would ever reclaim them).
pub fn analysis_cache_key(path: &str, content: &str, opts: &AnalyzeOptions) -> u64 {
    let salt = if opts.cache.is_some() { option_salt(opts) } else { 0 };
    file_key(content, salt, Frontend::of_path(path).salt_tag())
}

/// Parses every file of `corpus` under `opts`, unions the graphs of
/// successfully analyzed files, and reports a per-file verdict for each.
///
/// File identity is stable: the [`FileId`] of every file equals its index
/// in corpus order even when earlier files are quarantined, so the union
/// order — and therefore event identity — is deterministic and independent
/// of the thread count.
///
/// # Errors
///
/// Under [`FaultPolicy::FailFast`], the error of the first (lowest-index)
/// bad file; the other policies only fail on corpus-level errors.
pub fn analyze_corpus_with(
    corpus: &Corpus,
    opts: &AnalyzeOptions,
) -> Result<(AnalyzedCorpus, AnalysisReport), PipelineError> {
    let started = Instant::now();
    let inputs: Vec<(usize, &str, &str)> = corpus
        .files()
        .map(|(project, f)| (project, f.path.as_str(), f.content.as_str()))
        .collect();
    let n = inputs.len();
    let threads = opts.threads.max(1).min(n.max(1));
    let salt = if opts.cache.is_some() { option_salt(opts) } else { 0 };

    let mut slots: Vec<Option<FileSlot>> = (0..n).map(|_| None).collect();
    if threads <= 1 {
        for (i, (_, path, content)) in inputs.iter().enumerate() {
            slots[i] = Some(analyze_one_cached(path, content, FileId(i as u32), opts, salt));
        }
    } else {
        let chunk = n.div_ceil(threads);
        let results = Mutex::new(Vec::<(usize, FileSlot)>::new());
        std::thread::scope(|scope| {
            for (t, chunk_inputs) in inputs.chunks(chunk).enumerate() {
                let results = &results;
                scope.spawn(move || {
                    let base = t * chunk;
                    let mut local = Vec::with_capacity(chunk_inputs.len());
                    // Drain the whole chunk: a bad file never starves the
                    // files behind it of analysis.
                    for (off, (_, path, content)) in chunk_inputs.iter().enumerate() {
                        let i = base + off;
                        local.push((
                            i,
                            analyze_one_cached(path, content, FileId(i as u32), opts, salt),
                        ));
                    }
                    results
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .extend(local);
                });
            }
        });
        for (i, r) in results.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
        {
            slots[i] = Some(r);
        }
    }

    let mut graphs: Vec<Option<PropagationGraph>> = Vec::with_capacity(n);
    let mut files = Vec::with_capacity(n);
    let mut reports = Vec::with_capacity(n);
    let mut cache_faults = Vec::new();
    let mut timings = BuildTimings::default();
    let mut cache_time = Duration::ZERO;
    // Per-project (parse time, files parsed) for the parse.project child
    // spans; cache-served files skip the front end and contribute nothing.
    let mut project_parse: Vec<(Duration, usize)> =
        vec![(Duration::ZERO, 0); corpus.projects.len()];
    // Per-frontend parse-time buckets: only meaningful when the timed
    // builders ran (an inactive handle reads no clocks, so every duration
    // would land in the first bucket as noise).
    let timed = opts.telemetry.is_active();
    let mut parse_hist: Vec<ParseHistogram> =
        Frontend::ALL.iter().map(|f| ParseHistogram::new(f.label())).collect();
    let mut build_hist = Histogram::with_u64_bounds(&PARSE_HIST_BOUNDS);
    for (i, (project, path, _)) in inputs.iter().enumerate() {
        let slot = slots[i].take().expect("every index 0..n is written exactly once above");
        if opts.policy == FaultPolicy::FailFast {
            // Deterministic: the lowest-index bad file wins regardless of
            // which worker finished first.
            match &slot.outcome {
                FileOutcome::Ok | FileOutcome::Recovered { .. } => {}
                FileOutcome::Skipped { error }
                | FileOutcome::OverBudget { error }
                | FileOutcome::Panicked { error } => return Err(error.clone()),
            }
        }
        timings.add(slot.timings);
        if !slot.from_cache {
            let slot_project = &mut project_parse[*project];
            slot_project.0 += slot.timings.parse;
            slot_project.1 += 1;
            if timed && slot.outcome.is_analyzed() {
                parse_hist[slot.frontend.index()]
                    .record(slot.timings.parse.as_micros() as u64);
                build_hist.observe(slot.timings.build.as_micros() as f64);
            }
        }
        cache_time += slot.cache_time;
        for fault in slot.faults {
            cache_faults.push(CacheFaultReport { path: path.to_string(), fault });
        }
        graphs.push(slot.graph);
        files.push(FileMeta { project: *project, path: path.to_string() });
        reports.push(FileReport {
            project: *project,
            path: path.to_string(),
            outcome: slot.outcome,
        });
    }
    let tele = &opts.telemetry;
    // Parse and graph construction run per file across workers, so their
    // cost is the summed per-file time (aggregate spans), not a driver
    // wall-clock interval. Per-project parse shares nest as children of
    // the parse stage span.
    let parse_idx = tele.aggregate_span(stage::PARSE, timings.parse, &[("files", n as f64)]);
    if parse_idx.is_some() {
        for (project, (dur, parsed)) in project_parse.iter().enumerate() {
            if *parsed == 0 {
                continue;
            }
            tele.aggregate_child(
                parse_idx,
                stage::PARSE_PROJECT,
                *dur,
                &[("project", project as f64), ("files", *parsed as f64)],
            );
        }
    }
    let analyzed_files = reports.iter().filter(|r| r.outcome.is_analyzed()).count();
    tele.aggregate_span(
        stage::PROPGRAPH,
        timings.build,
        &[("files_analyzed", analyzed_files as f64)],
    );
    if let Some(cache) = opts.cache.as_deref() {
        let s = cache.stats();
        tele.aggregate_span(
            stage::CACHE,
            cache_time,
            &[
                ("hits", s.hits as f64),
                ("misses", s.misses as f64),
                ("stores", s.stores as f64),
                ("corrupt", s.corrupt as f64),
                ("stale", s.stale as f64),
                ("evicted", s.evicted as f64),
            ],
        );
    }
    let union_span = tele.span(stage::UNION);
    let union_idx = union_span.index();
    let (graph, shards) = union_all(&mut graphs, threads);
    union_span.counter("events", graph.event_count() as f64);
    union_span.counter("edges", graph.edge_count() as f64);
    union_span.counter("symbols", seldon_intern::len() as f64);
    drop(union_span);
    // Per-shard union timings nest under the union span (empty when the
    // union ran sequentially).
    for (shard, (dur, events)) in shards.iter().enumerate() {
        tele.aggregate_child(
            union_idx,
            stage::UNION_SHARD,
            *dur,
            &[("shard", shard as f64), ("events", *events as f64)],
        );
    }
    Ok((
        AnalyzedCorpus {
            graph,
            files,
            build_time: started.elapsed(),
            parse_histograms: parse_hist.into_iter().filter(|h| h.total() > 0).collect(),
            build_histogram: build_hist,
        },
        AnalysisReport { files: reports, cache_faults },
    ))
}

/// Folds per-file graphs into one global graph, sharded across `threads`.
///
/// `union` is an order-preserving concatenation (event ids shift by the
/// running event count), so it is associative: folding contiguous chunks
/// into per-thread shards and then folding the shards in chunk order
/// produces byte-identical event identity to the sequential left fold.
/// Each worker touches only its own chunk; the final shard merge is
/// `threads − 1` cheap bulk copies.
///
/// Also returns each shard's `(fold time, event count)` in shard order for
/// the `union.shard` child spans — empty for the sequential path.
fn union_all(
    graphs: &mut [Option<PropagationGraph>],
    threads: usize,
) -> (PropagationGraph, Vec<(Duration, usize)>) {
    let total_events: usize =
        graphs.iter().map(|g| g.as_ref().map_or(0, PropagationGraph::event_count)).sum();
    let mut graph = PropagationGraph::new();
    graph.reserve_events(total_events);
    if threads <= 1 || graphs.len() <= 1 {
        for slot in graphs {
            if let Some(g) = slot.take() {
                graph.union(&g);
            }
        }
        return (graph, Vec::new());
    }
    let chunk = graphs.len().div_ceil(threads);
    let shards: Vec<(PropagationGraph, Duration)> = std::thread::scope(|scope| {
        let handles: Vec<_> = graphs
            .chunks_mut(chunk)
            .map(|slots| {
                scope.spawn(move || {
                    let shard_started = Instant::now();
                    let mut shard = PropagationGraph::new();
                    shard.reserve_events(
                        slots
                            .iter()
                            .map(|g| g.as_ref().map_or(0, PropagationGraph::event_count))
                            .sum(),
                    );
                    for slot in slots {
                        if let Some(g) = slot.take() {
                            shard.union(&g);
                        }
                    }
                    (shard, shard_started.elapsed())
                })
            })
            .collect();
        // Joining in spawn order keeps the shard sequence aligned with the
        // chunk (and therefore corpus) order.
        handles
            .into_iter()
            .map(|h| h.join().expect("shard union worker panicked"))
            .collect()
    });
    let mut shard_timings = Vec::with_capacity(shards.len());
    for (shard, dur) in &shards {
        graph.union(shard);
        shard_timings.push((*dur, shard.event_count()));
    }
    (graph, shard_timings)
}

/// Parses every file of `corpus` and unions the per-file graphs.
///
/// Equivalent to [`analyze_corpus_with`] under [`FaultPolicy::FailFast`]
/// with no budget — the legacy strict pipeline.
///
/// # Errors
///
/// Returns [`PipelineError::Parse`] if any generated file fails to parse —
/// the corpus generator guarantees parseable output, so this indicates a
/// front-end bug.
pub fn analyze_corpus(corpus: &Corpus, threads: usize) -> Result<AnalyzedCorpus, PipelineError> {
    let opts = AnalyzeOptions { threads, ..AnalyzeOptions::default() };
    Ok(analyze_corpus_with(corpus, &opts)?.0)
}

/// Analyzes a single project of the corpus (used for the Q5 experiment).
///
/// # Errors
///
/// Returns [`PipelineError::Parse`] on front-end failure, or
/// [`PipelineError::NoSuchProject`] for an out-of-range index.
pub fn analyze_project(corpus: &Corpus, project: usize) -> Result<AnalyzedCorpus, PipelineError> {
    if project >= corpus.projects.len() {
        return Err(PipelineError::NoSuchProject(project));
    }
    let started = Instant::now();
    let mut graph = PropagationGraph::new();
    let mut files = Vec::new();
    for f in &corpus.projects[project].files {
        let id = FileId(files.len() as u32);
        let g = match Frontend::of_path(&f.path) {
            Frontend::Python => build_source(&f.content, id),
            Frontend::Js => build_js_source(&f.content, id),
        }
        .map_err(|e| PipelineError::Parse {
            path: f.path.clone(),
            message: e.to_string(),
        })?;
        graph.union(&g);
        files.push(FileMeta { project, path: f.path.clone() });
    }
    Ok(AnalyzedCorpus {
        graph,
        files,
        build_time: started.elapsed(),
        parse_histograms: Vec::new(),
        build_histogram: Histogram::with_u64_bounds(&PARSE_HIST_BOUNDS),
    })
}

/// Hyperparameters of a full Seldon run; defaults follow the paper.
#[derive(Debug, Clone, Default)]
pub struct SeldonOptions {
    /// Constraint-generation options (cutoff 5, C = 0.75).
    pub gen: GenOptions,
    /// Solver options (λ = 0.1, projected Adam).
    pub solve: SolveOptions,
    /// Extraction options (t = 0.1, decay 0.8).
    pub extract: ExtractOptions,
    /// When true (and telemetry records), the manifest carries the full
    /// per-representation score dump with backoff levels — the Fig. 11
    /// dataset. Off by default: the dump scales with the learned spec.
    pub score_dump: bool,
    /// Opt-in near-miss checkpoint reuse for [`run_seldon_cached`]: when
    /// set and the system fingerprint misses, the solver is seeded from
    /// the previous checkpoint's scores (remapped by representation and
    /// role). `None` (the default) keeps the historical exact-match-only
    /// behavior, so existing cached runs are untouched.
    pub warm_start: Option<WarmStartOptions>,
}

/// Margin used by [`WarmStartOptions::default`]: a warm solution is only
/// accepted when every extraction decision clears the threshold by at
/// least this much, comfortably above the score wobble between a warm and
/// a cold convergence (both stop at relative tolerance `1e-6`).
pub const DEFAULT_WARM_MARGIN: f64 = 0.02;

/// Policy for near-miss checkpoint warm-starting (see
/// [`SeldonOptions::warm_start`]).
///
/// Warm and cold solves converge to the same optimum region but not to
/// bit-identical scores, so a warm solution is only *accepted* when its
/// extraction margin — the smallest distance between any decayed score
/// and its role threshold, over every (event, role, backoff level)
/// decision — is at least `min_margin`. A tighter margin means the tiny
/// warm-vs-cold score difference could flip a spec entry, so the run
/// falls back to a cold solve on the same compiled system and the output
/// stays byte-identical to an uncached run by construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmStartOptions {
    /// Minimum extraction margin below which the warm solution is
    /// discarded in favor of a cold solve.
    pub min_margin: f64,
}

impl Default for WarmStartOptions {
    fn default() -> Self {
        WarmStartOptions { min_margin: DEFAULT_WARM_MARGIN }
    }
}

/// The artifacts of a full Seldon run.
#[derive(Debug)]
pub struct SeldonRun {
    /// The generated constraint system.
    pub system: ConstraintSystem,
    /// The solved scores.
    pub solution: Solution,
    /// The extracted specification and per-event roles.
    pub extraction: Extraction,
    /// Time spent generating constraints.
    pub gen_time: Duration,
    /// Time spent solving.
    pub solve_time: Duration,
    /// Phase timings and drop counters of constraint generation.
    pub gen_stats: GenStats,
}

impl SeldonRun {
    /// Number of candidate events that entered the constraint system.
    pub fn candidate_count(&self) -> usize {
        self.system.event_reps.len()
    }
}

/// Convergence-trace stride used when telemetry records but the caller
/// left [`SolveOptions::trace_stride`] at 0: every 10th epoch plus the
/// final one — dense enough to plot, sparse enough to keep the Adam hot
/// loop cheap.
pub const DEFAULT_TRACE_STRIDE: usize = 10;

/// Runs constraint generation, solving, and extraction over a graph.
pub fn run_seldon(graph: &PropagationGraph, seed: &TaintSpec, opts: &SeldonOptions) -> SeldonRun {
    run_seldon_traced(graph, seed, opts, &Telemetry::disabled())
}

/// Like [`run_seldon`], emitting the `representation`, `constraints`,
/// `solve` (with a nested `compile` child span for the CSR lowering),
/// and `extract` stage spans on `tele`. When `tele` records and the
/// caller left the solver trace stride at 0, the stride defaults to
/// [`DEFAULT_TRACE_STRIDE`] so the manifest always carries a convergence
/// curve.
pub fn run_seldon_traced(
    graph: &PropagationGraph,
    seed: &TaintSpec,
    opts: &SeldonOptions,
    tele: &Telemetry,
) -> SeldonRun {
    let (system, gen_stats, gen_time) = gen_stage(graph, seed, opts, tele);
    let (solution, solve_time) = solve_stage(&system, opts, tele);
    let extraction = extract_stage(&system, &solution, opts, tele);
    SeldonRun { system, solution, extraction, gen_time, solve_time, gen_stats }
}

/// Constraint generation with its `representation` + `constraints` spans.
fn gen_stage(
    graph: &PropagationGraph,
    seed: &TaintSpec,
    opts: &SeldonOptions,
    tele: &Telemetry,
) -> (ConstraintSystem, GenStats, Duration) {
    let t0 = Instant::now();
    let (system, gen_stats) = generate_with_stats(graph, seed, &opts.gen);
    let gen_time = t0.elapsed();
    tele.aggregate_span(
        stage::REPRESENTATION,
        gen_stats.select_time,
        &[
            ("candidate_events", gen_stats.candidate_events as f64),
            ("surviving_reps", gen_stats.surviving_reps as f64),
            ("dropped_by_cutoff", gen_stats.dropped_by_cutoff as f64),
            ("dropped_by_blacklist", gen_stats.dropped_by_blacklist as f64),
        ],
    );
    let by_template = system.template_counts();
    tele.aggregate_span(
        stage::CONSTRAINTS,
        gen_stats.collect_time,
        &[
            ("constraints", system.constraint_count() as f64),
            ("vars", system.var_count() as f64),
            ("pinned", system.pinned_count() as f64),
            ("template_a", by_template[0] as f64),
            ("template_b", by_template[1] as f64),
            ("template_c", by_template[2] as f64),
        ],
    );
    (system, gen_stats, gen_time)
}

/// CSR compilation + projected Adam with the `solve` span (and its nested
/// `compile` child).
fn solve_stage(
    system: &ConstraintSystem,
    opts: &SeldonOptions,
    tele: &Telemetry,
) -> (Solution, Duration) {
    let mut solve_opts = opts.solve.clone();
    if tele.is_recording() && solve_opts.trace_stride == 0 {
        solve_opts.trace_stride = DEFAULT_TRACE_STRIDE;
    }
    let t1 = Instant::now();
    let solve_span = tele.span(stage::SOLVE);
    let compile_span = tele.span(stage::COMPILE);
    let compiled = CompiledSystem::compile(system);
    compile_span.counter("constraints", compiled.constraint_count() as f64);
    compile_span.counter("rows", compiled.row_count() as f64);
    compile_span.counter("terms", compiled.term_count() as f64);
    compile_span.counter("lanes", compiled.lane_count() as f64);
    drop(compile_span);
    let solution = solve_compiled(&compiled, &solve_opts);
    solve_span.counter("threads", solve_opts.threads.max(1) as f64);
    solve_span.counter("iterations", solution.iterations as f64);
    solve_span.counter("restarts", solution.restarts as f64);
    solve_span.counter("objective", solution.objective);
    solve_span.counter("violation", solution.violation);
    solve_span.counter("stop_reason", solution.stop.code() as f64);
    solve_span.counter("epochs_saved", solution.epochs_saved as f64);
    drop(solve_span);
    (solution, t1.elapsed())
}

/// The guarded warm solve: seed Adam from `init`, then accept the warm
/// solution only when its extraction margin clears `policy.min_margin`;
/// otherwise re-solve cold on the same compiled system so the output is
/// byte-identical to an uncached run. Returns whether the warm solution
/// was accepted.
fn warm_solve_stage(
    system: &ConstraintSystem,
    init: &[f64],
    policy: &WarmStartOptions,
    opts: &SeldonOptions,
    tele: &Telemetry,
) -> (Solution, Duration, bool) {
    let mut solve_opts = opts.solve.clone();
    if tele.is_recording() && solve_opts.trace_stride == 0 {
        solve_opts.trace_stride = DEFAULT_TRACE_STRIDE;
    }
    let t1 = Instant::now();
    let solve_span = tele.span(stage::SOLVE);
    let compile_span = tele.span(stage::COMPILE);
    let compiled = CompiledSystem::compile(system);
    compile_span.counter("constraints", compiled.constraint_count() as f64);
    compile_span.counter("rows", compiled.row_count() as f64);
    compile_span.counter("terms", compiled.term_count() as f64);
    compile_span.counter("lanes", compiled.lane_count() as f64);
    drop(compile_span);
    let warm = solve_compiled_warm(&compiled, &solve_opts, init);
    let margin = extraction_margin(system, &warm, &opts.extract);
    let accepted = margin >= policy.min_margin;
    let solution =
        if accepted { warm } else { solve_compiled(&compiled, &solve_opts) };
    solve_span.counter("threads", solve_opts.threads.max(1) as f64);
    solve_span.counter("iterations", solution.iterations as f64);
    solve_span.counter("restarts", solution.restarts as f64);
    solve_span.counter("objective", solution.objective);
    solve_span.counter("violation", solution.violation);
    solve_span.counter("stop_reason", solution.stop.code() as f64);
    solve_span.counter("epochs_saved", solution.epochs_saved as f64);
    solve_span.counter("warm_accepted", f64::from(accepted));
    solve_span.counter("warm_margin", margin);
    drop(solve_span);
    (solution, t1.elapsed(), accepted)
}

/// Specification extraction with its `extract` span.
fn extract_stage(
    system: &ConstraintSystem,
    solution: &Solution,
    opts: &SeldonOptions,
    tele: &Telemetry,
) -> Extraction {
    let extract_span = tele.span(stage::EXTRACT);
    let extraction = extract(system, solution, &opts.extract);
    extract_span.counter("learned_entries", extraction.spec.role_count() as f64);
    extract_span.counter("events_with_roles", extraction.event_roles.len() as f64);
    drop(extract_span);
    extraction
}

/// How [`run_seldon_cached`] used the solver warm-start checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointOutcome {
    /// No cache attached; the run was fully cold.
    #[default]
    Disabled,
    /// Checkpoint absent, damaged, or fingerprint-mismatched; solved from
    /// zero and stored a fresh checkpoint.
    MissCold,
    /// The system fingerprint matched: the stored score vector was reused
    /// bit-for-bit and the solve was skipped.
    HitScores,
    /// The input fingerprint matched: generation, solving, and extraction
    /// were all skipped and the stored outputs replayed.
    HitFull,
    /// The system changed, but ([`SeldonOptions::warm_start`] being set)
    /// the solver was seeded from the previous checkpoint's remapped
    /// scores and the warm solution cleared the extraction-margin guard.
    HitWarm,
}

impl CheckpointOutcome {
    /// The manifest's `cache.checkpoint` string.
    pub fn label(self) -> &'static str {
        match self {
            CheckpointOutcome::Disabled => "off",
            CheckpointOutcome::MissCold => "cold",
            CheckpointOutcome::HitScores => "scores",
            CheckpointOutcome::HitFull => "full",
            CheckpointOutcome::HitWarm => "warm",
        }
    }
}

/// What the checkpoint path of one run did, for reports and the manifest.
#[derive(Debug, Default)]
pub struct CheckpointUse {
    /// How the checkpoint was used.
    pub outcome: CheckpointOutcome,
    /// Contained faults hit loading or storing the checkpoint.
    pub faults: Vec<CacheFault>,
    /// System shape replayed from the checkpoint on a full hit (the
    /// in-memory [`SeldonRun::system`] is empty then).
    pub summary: Option<SystemSummary>,
}

/// Rebuilds a [`SeldonRun`] from a full-hit checkpoint without touching
/// the solver, replaying the skipped stages as zero-duration aggregate
/// spans so the manifest keeps its full stage set. Returns `None` when the
/// stored spec text fails to parse (the entry checksummed clean but its
/// content is unusable — the caller treats that as a corrupt entry).
fn replay_full(
    ckpt: &Checkpoint,
    opts: &SeldonOptions,
    tele: &Telemetry,
    load_time: Duration,
) -> Option<SeldonRun> {
    let spec = TaintSpec::parse(&ckpt.spec_text).ok()?;
    let s = &ckpt.summary;
    tele.aggregate_span(
        stage::REPRESENTATION,
        Duration::ZERO,
        &[
            ("candidate_events", s.candidates as f64),
            ("surviving_reps", s.surviving_reps as f64),
            ("dropped_by_cutoff", s.dropped_by_cutoff as f64),
            ("dropped_by_blacklist", s.dropped_by_blacklist as f64),
            ("replayed", 1.0),
        ],
    );
    tele.aggregate_span(
        stage::CONSTRAINTS,
        Duration::ZERO,
        &[
            ("constraints", s.constraints as f64),
            ("vars", s.vars as f64),
            ("pinned", s.pinned as f64),
            ("template_a", s.by_template[0] as f64),
            ("template_b", s.by_template[1] as f64),
            ("template_c", s.by_template[2] as f64),
            ("replayed", 1.0),
        ],
    );
    tele.aggregate_span(
        stage::SOLVE,
        load_time,
        &[
            ("threads", opts.solve.threads.max(1) as f64),
            ("iterations", ckpt.iterations as f64),
            ("restarts", ckpt.restarts as f64),
            ("objective", ckpt.objective),
            ("violation", ckpt.violation),
            ("stop_reason", StopReason::parse(&ckpt.stop_reason).unwrap_or_default().code() as f64),
            ("epochs_saved", ckpt.epochs_saved as f64),
            ("replayed", 1.0),
        ],
    );
    tele.aggregate_span(
        stage::EXTRACT,
        Duration::ZERO,
        &[
            ("learned_entries", spec.role_count() as f64),
            ("events_with_roles", ckpt.event_roles.len() as f64),
            ("replayed", 1.0),
        ],
    );
    Some(SeldonRun {
        system: ConstraintSystem::new(opts.gen.c),
        solution: Solution {
            scores: ckpt.scores.clone(),
            objective: ckpt.objective,
            violation: ckpt.violation,
            iterations: ckpt.iterations,
            history: Vec::new(),
            diverged: ckpt.diverged,
            restarts: ckpt.restarts,
            final_lr: ckpt.final_lr,
            stop: StopReason::parse(&ckpt.stop_reason).unwrap_or_default(),
            epochs_saved: ckpt.epochs_saved,
            trace: ckpt.curve.clone(),
        },
        extraction: Extraction {
            spec,
            event_roles: ckpt.event_role_map(),
            backoff_hits: ckpt.backoff_hits.clone(),
            ..Extraction::default()
        },
        gen_time: Duration::ZERO,
        solve_time: load_time,
        gen_stats: GenStats {
            select_time: Duration::ZERO,
            collect_time: Duration::ZERO,
            candidate_events: s.candidates as usize,
            surviving_reps: s.surviving_reps as usize,
            dropped_by_cutoff: s.dropped_by_cutoff as usize,
            dropped_by_blacklist: s.dropped_by_blacklist as usize,
        },
    })
}

/// Packs one finished run into the checkpoint the next run warm-starts
/// from.
fn checkpoint_of(
    input_fp: u64,
    system_fp: u64,
    system: &ConstraintSystem,
    gen_stats: &GenStats,
    solution: &Solution,
    extraction: &Extraction,
) -> Checkpoint {
    let by_template = system.template_counts();
    let mut event_roles: Vec<(u32, u8)> = extraction
        .event_roles
        .iter()
        .map(|(&id, &roles)| (id.0, Checkpoint::role_bits(roles)))
        .collect();
    event_roles.sort_unstable();
    Checkpoint {
        input_fp,
        system_fp,
        scores: solution.scores.clone(),
        var_keys: Checkpoint::var_keys_of(system),
        objective: solution.objective,
        violation: solution.violation,
        iterations: solution.iterations,
        restarts: solution.restarts,
        final_lr: solution.final_lr,
        diverged: solution.diverged,
        stop_reason: solution.stop.as_str().to_string(),
        epochs_saved: solution.epochs_saved,
        curve: solution.trace.clone(),
        spec_text: extraction.spec.to_text(),
        event_roles,
        backoff_hits: extraction.backoff_hits.clone(),
        summary: SystemSummary {
            constraints: system.constraint_count() as u64,
            vars: system.var_count() as u64,
            pinned: system.pinned_count() as u64,
            by_template: [
                by_template[0] as u64,
                by_template[1] as u64,
                by_template[2] as u64,
            ],
            candidates: gen_stats.candidate_events as u64,
            surviving_reps: gen_stats.surviving_reps as u64,
            dropped_by_cutoff: gen_stats.dropped_by_cutoff as u64,
            dropped_by_blacklist: gen_stats.dropped_by_blacklist as u64,
        },
    }
}

/// [`run_seldon_traced`] behind the solver warm-start checkpoint.
///
/// With a cache attached, the run is keyed by two exact fingerprints
/// (see [`seldon_cache::checkpoint`]): a full input-fingerprint match
/// replays the stored scores, spec, and roles without generating or
/// solving anything; a system-fingerprint match reuses the score vector
/// and skips only the solve; anything else runs cold and stores a fresh
/// checkpoint. Reuse is all-or-nothing by default, so the returned spec
/// and scores are byte-identical to what the cold run would produce — a
/// damaged or mismatched checkpoint costs time, never output fidelity.
///
/// With [`SeldonOptions::warm_start`] set, a system-fingerprint miss
/// additionally tries a *near-miss* warm solve seeded from the previous
/// checkpoint's scores (remapped by `(representation, role)`), accepted
/// only when the extraction margin clears the policy's threshold — below
/// it, the run falls back to a cold solve on the same system.
pub fn run_seldon_cached(
    graph: &PropagationGraph,
    seed: &TaintSpec,
    opts: &SeldonOptions,
    tele: &Telemetry,
    cache: Option<&ArtifactCache>,
) -> (SeldonRun, CheckpointUse) {
    let Some(cache) = cache else {
        return (run_seldon_traced(graph, seed, opts, tele), CheckpointUse::default());
    };
    let mut usage = CheckpointUse { outcome: CheckpointOutcome::MissCold, ..Default::default() };
    let input_fp =
        input_fingerprint(graph_fingerprint(graph), seed, &opts.gen, &opts.solve, &opts.extract);
    let t0 = Instant::now();
    let stored = match cache.load_checkpoint() {
        CheckpointLookup::Hit(ckpt) => Some(ckpt),
        CheckpointLookup::Miss => None,
        CheckpointLookup::Fault(f) => {
            usage.faults.push(f);
            None
        }
    };
    let load_time = t0.elapsed();

    if let Some(ckpt) = &stored {
        if ckpt.input_fp == input_fp {
            match replay_full(ckpt, opts, tele, load_time) {
                Some(run) => {
                    usage.outcome = CheckpointOutcome::HitFull;
                    usage.summary = Some(ckpt.summary);
                    return (run, usage);
                }
                None => usage.faults.push(CacheFault {
                    entry: CHECKPOINT_NAME.to_string(),
                    class: FaultClass::Corrupt,
                    detail: "stored spec text failed to parse".to_string(),
                }),
            }
        }
    }

    let (system, gen_stats, gen_time) = gen_stage(graph, seed, opts, tele);
    let system_fp = system_fingerprint(&system, &opts.solve);
    let (solution, solve_time) = match &stored {
        Some(ckpt) if ckpt.system_fp == system_fp => {
            usage.outcome = CheckpointOutcome::HitScores;
            // Replay the solve span with the stored outcome; no compile
            // child because nothing was compiled.
            tele.aggregate_span(
                stage::SOLVE,
                load_time,
                &[
                    ("threads", opts.solve.threads.max(1) as f64),
                    ("iterations", ckpt.iterations as f64),
                    ("restarts", ckpt.restarts as f64),
                    ("objective", ckpt.objective),
                    ("violation", ckpt.violation),
                    (
                        "stop_reason",
                        StopReason::parse(&ckpt.stop_reason).unwrap_or_default().code() as f64,
                    ),
                    ("epochs_saved", ckpt.epochs_saved as f64),
                    ("replayed", 1.0),
                ],
            );
            (
                Solution {
                    scores: ckpt.scores.clone(),
                    objective: ckpt.objective,
                    violation: ckpt.violation,
                    iterations: ckpt.iterations,
                    history: Vec::new(),
                    diverged: ckpt.diverged,
                    restarts: ckpt.restarts,
                    final_lr: ckpt.final_lr,
                    stop: StopReason::parse(&ckpt.stop_reason).unwrap_or_default(),
                    epochs_saved: ckpt.epochs_saved,
                    trace: ckpt.curve.clone(),
                },
                load_time,
            )
        }
        _ => {
            let warm_seed = opts.warm_start.as_ref().and_then(|policy| {
                let init = stored.as_ref()?.warm_init_for(&system)?;
                Some((policy, init))
            });
            match warm_seed {
                Some((policy, init)) => {
                    let (solution, solve_time, accepted) =
                        warm_solve_stage(&system, &init, policy, opts, tele);
                    if accepted {
                        usage.outcome = CheckpointOutcome::HitWarm;
                    }
                    (solution, solve_time)
                }
                None => solve_stage(&system, opts, tele),
            }
        }
    };
    let extraction = extract_stage(&system, &solution, opts, tele);
    // Store (or re-key) the checkpoint so the next identical run takes the
    // full-reuse path.
    let ckpt = checkpoint_of(input_fp, system_fp, &system, &gen_stats, &solution, &extraction);
    if let Some(f) = cache.store_checkpoint(&ckpt) {
        usage.faults.push(f);
    }
    (
        SeldonRun { system, solution, extraction, gen_time, solve_time, gen_stats },
        usage,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldon_corpus::{generate_corpus, CorpusOptions, Project, SourceFile, Universe};

    fn corpus() -> Corpus {
        generate_corpus(
            &Universe::new(),
            &CorpusOptions { projects: 8, ..Default::default() },
        )
    }

    /// A corpus with one clean and one malformed file.
    fn mixed_corpus() -> Corpus {
        Corpus {
            projects: vec![Project {
                name: "p0".into(),
                files: vec![
                    SourceFile {
                        path: "good.py".into(),
                        content: "import flask\nx = flask.request.args.get('q')\n".into(),
                    },
                    SourceFile {
                        path: "bad.py".into(),
                        content: "def broken(:\n".into(),
                    },
                ],
            }],
            ..Default::default()
        }
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let c = corpus();
        let a = analyze_corpus(&c, 1).unwrap();
        let b = analyze_corpus(&c, 4).unwrap();
        assert_eq!(a.graph.event_count(), b.graph.event_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        assert_eq!(a.files.len(), b.files.len());
        // Event identity must match exactly (deterministic union order).
        for (id, ev) in a.graph.events() {
            assert_eq!(ev.reps, b.graph.event(id).reps);
        }
    }

    #[test]
    fn file_metadata_attributes_projects() {
        let c = corpus();
        let a = analyze_corpus(&c, 2).unwrap();
        assert_eq!(a.files.len(), c.file_count());
        let projects: std::collections::HashSet<usize> =
            a.files.iter().map(|f| f.project).collect();
        assert_eq!(projects.len(), c.projects.len());
    }

    #[test]
    fn single_project_analysis() {
        let c = corpus();
        let a = analyze_project(&c, 0).unwrap();
        assert_eq!(a.files.len(), c.projects[0].files.len());
        assert!(a.graph.event_count() > 0);
        assert!(matches!(
            analyze_project(&c, 999),
            Err(PipelineError::NoSuchProject(999))
        ));
    }

    #[test]
    fn failfast_aborts_on_malformed_file() {
        let c = mixed_corpus();
        let err = analyze_corpus(&c, 1).unwrap_err();
        assert!(matches!(err, PipelineError::Parse { ref path, .. } if path == "bad.py"));
        // Same error regardless of thread count.
        assert_eq!(err, analyze_corpus(&c, 4).unwrap_err());
    }

    #[test]
    fn skip_quarantines_malformed_file() {
        let c = mixed_corpus();
        let opts = AnalyzeOptions { policy: FaultPolicy::Skip, ..Default::default() };
        let (analyzed, report) = analyze_corpus_with(&c, &opts).unwrap();
        assert_eq!(analyzed.files.len(), 2, "quarantined files keep their FileId slot");
        assert!(analyzed.graph.event_count() > 0);
        assert_eq!(report.ok(), 1);
        assert_eq!(report.skipped(), 1);
        assert!(report.is_degraded());
        let quarantined: Vec<&str> =
            report.quarantined().map(|f| f.path.as_str()).collect();
        assert_eq!(quarantined, ["bad.py"]);
    }

    #[test]
    fn recover_retries_malformed_file() {
        let c = mixed_corpus();
        let opts = AnalyzeOptions { policy: FaultPolicy::Recover, ..Default::default() };
        let (analyzed, report) = analyze_corpus_with(&c, &opts).unwrap();
        assert_eq!(report.ok(), 1);
        assert_eq!(report.recovered(), 1);
        assert_eq!(report.quarantined().count(), 0);
        assert_eq!(analyzed.files.len(), 2);
    }

    #[test]
    fn recover_equals_failfast_on_clean_corpus() {
        let c = corpus();
        let strict = analyze_corpus(&c, 2).unwrap();
        let opts = AnalyzeOptions {
            policy: FaultPolicy::Recover,
            threads: 2,
            ..Default::default()
        };
        let (lenient, report) = analyze_corpus_with(&c, &opts).unwrap();
        assert!(!report.is_degraded());
        assert_eq!(strict.graph.event_count(), lenient.graph.event_count());
        assert_eq!(strict.graph.edge_count(), lenient.graph.edge_count());
        for (id, ev) in strict.graph.events() {
            assert_eq!(ev.reps, lenient.graph.event(id).reps);
        }
    }

    #[test]
    fn budget_quarantines_oversized_file() {
        let mut c = mixed_corpus();
        c.projects[0].files[1] = SourceFile {
            path: "huge.py".into(),
            content: format!("# {}\n", "x".repeat(4096)),
        };
        let opts = AnalyzeOptions {
            policy: FaultPolicy::Skip,
            budget: Some(Budget { max_source_bytes: 1024, ..Budget::default() }),
            ..Default::default()
        };
        let (_, report) = analyze_corpus_with(&c, &opts).unwrap();
        assert_eq!(report.over_budget(), 1);
        assert!(matches!(
            report.files[1].outcome,
            FileOutcome::OverBudget {
                error: PipelineError::OverBudget { .. }
            }
        ));
    }

    #[test]
    fn panic_marker_is_contained_under_skip() {
        let mut c = mixed_corpus();
        c.projects[0].files[1] = SourceFile {
            path: "panics.py".into(),
            content: format!("x = 1\n{}\n", seldon_corpus::PANIC_MARKER),
        };
        let opts = AnalyzeOptions {
            policy: FaultPolicy::Skip,
            fault_markers: true,
            ..Default::default()
        };
        let (analyzed, report) = analyze_corpus_with(&c, &opts).unwrap();
        assert_eq!(report.panicked(), 1);
        assert_eq!(report.ok(), 1);
        assert!(analyzed.graph.event_count() > 0);
    }

    /// A corpus with one Python and one JS file, exercising both frontends.
    fn mixed_lang_corpus() -> Corpus {
        Corpus {
            projects: vec![Project {
                name: "p0".into(),
                files: vec![
                    SourceFile {
                        path: "a.py".into(),
                        content: "import flask\nx = flask.request.args.get('q')\n".into(),
                    },
                    SourceFile {
                        path: "b.js".into(),
                        content: "const db = require('db');\n\
                                  function handler(req) { return db.query(req); }\n"
                            .into(),
                    },
                ],
            }],
            ..Default::default()
        }
    }

    #[test]
    fn frontend_dispatches_by_extension() {
        assert_eq!(Frontend::of_path("app/views.py"), Frontend::Python);
        assert_eq!(Frontend::of_path("app/views.js"), Frontend::Js);
        assert_eq!(Frontend::of_path("README"), Frontend::Python);
        assert_ne!(Frontend::Python.salt_tag(), Frontend::Js.salt_tag());
    }

    #[test]
    fn mixed_language_corpus_analyzes_both_frontends() {
        let analyzed = analyze_corpus(&mixed_lang_corpus(), 1).unwrap();
        assert_eq!(analyzed.files.len(), 2);
        // Both files contributed events to the one global graph.
        let with_events: std::collections::HashSet<u32> =
            analyzed.graph.events().map(|(_, ev)| ev.file.0).collect();
        assert_eq!(with_events, [0u32, 1].into_iter().collect());
    }

    #[test]
    fn identical_bytes_never_alias_across_frontends() {
        // Parses under both frontends (JS semicolons are optional), but
        // must still occupy two distinct cache entries.
        let content = "x = db.query(req)\n";
        let c = Corpus {
            projects: vec![Project {
                name: "p0".into(),
                files: vec![
                    SourceFile { path: "same.py".into(), content: content.into() },
                    SourceFile { path: "same.js".into(), content: content.into() },
                ],
            }],
            ..Default::default()
        };
        let dir = std::env::temp_dir()
            .join(format!("seldon-frontend-alias-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (cache, _) = seldon_cache::ArtifactCache::open(&dir).unwrap();
        let opts = AnalyzeOptions { cache: Some(Arc::new(cache)), ..Default::default() };
        let (_, report) = analyze_corpus_with(&c, &opts).unwrap();
        assert_eq!(report.ok(), 2);
        let s = opts.cache.as_deref().unwrap().stats();
        assert_eq!((s.hits, s.misses, s.stores), (0, 2, 2), "no cross-frontend aliasing");
        // Warm run: each file is served from its own frontend's entry.
        let (cache, _) = seldon_cache::ArtifactCache::open(&dir).unwrap();
        let opts = AnalyzeOptions { cache: Some(Arc::new(cache)), ..Default::default() };
        analyze_corpus_with(&c, &opts).unwrap();
        let s = opts.cache.as_deref().unwrap().stats();
        assert_eq!((s.hits, s.misses), (2, 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_histograms_tally_per_frontend_when_timed() {
        let opts = AnalyzeOptions { telemetry: Telemetry::recording(), ..Default::default() };
        let (analyzed, _) = analyze_corpus_with(&mixed_lang_corpus(), &opts).unwrap();
        let mut labels: Vec<&str> =
            analyzed.parse_histograms.iter().map(|h| h.frontend.as_str()).collect();
        labels.sort_unstable();
        assert_eq!(labels, ["js", "python"]);
        for h in &analyzed.parse_histograms {
            assert_eq!(h.total(), 1, "one file per frontend");
        }
        // Without active telemetry the untimed builders run (no clock
        // reads), so no histogram is fabricated from zero durations.
        let (analyzed, _) =
            analyze_corpus_with(&mixed_lang_corpus(), &AnalyzeOptions::default()).unwrap();
        assert!(analyzed.parse_histograms.is_empty());
    }

    #[test]
    fn full_run_learns_something() {
        let c = corpus();
        let analyzed = analyze_corpus(&c, 2).unwrap();
        let universe = Universe::new();
        let seed = universe.seed_spec();
        let run = run_seldon(&analyzed.graph, &seed, &SeldonOptions::default());
        assert!(run.system.constraint_count() > 0, "no constraints generated");
        assert!(run.candidate_count() > 0);
        assert!(
            run.extraction.spec.role_count() > 0,
            "nothing learned from {} constraints over {} vars",
            run.system.constraint_count(),
            run.system.var_count()
        );
    }

    #[test]
    fn empty_seed_learns_nothing() {
        let c = corpus();
        let analyzed = analyze_corpus(&c, 2).unwrap();
        let run = run_seldon(&analyzed.graph, &TaintSpec::new(), &SeldonOptions::default());
        assert_eq!(
            run.extraction.spec.role_count(),
            0,
            "empty seed must yield the all-zeros solution (paper Q6)"
        );
    }
}
