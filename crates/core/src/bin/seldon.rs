//! The `seldon` command-line tool: taint-check real Python files and learn
//! taint specifications from a directory of code, end to end.
//!
//! ```text
//! seldon graph  <file.py> [--dot]
//! seldon check  <path...> [--spec <spec.txt>] [--param-sensitive]
//! seldon learn  <path...> [--seed <spec.txt>] [--out <learned.txt>]
//! ```
//!
//! `--spec`/`--seed` files use the paper's App. B format (`o:`/`a:`/`i:`/
//! `b:`/`p:` lines); without one, the paper's embedded seed specification
//! is used.

use seldon_constraints::GenOptions;
use seldon_core::{run_seldon, SeldonOptions};
use seldon_propgraph::{build_source_lenient, to_dot, FileId, PropagationGraph};
use seldon_specs::{paper_seed, TaintSpec};
use seldon_taint::{render_reports, reports_to_json, TaintAnalyzer, TaintOptions};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "graph" => cmd_graph(rest),
        "check" => cmd_check(rest),
        "learn" => cmd_learn(rest),
        "-h" | "--help" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  seldon graph  <file.py> [--dot]
  seldon check  <path...> [--spec <spec.txt>] [--param-sensitive] [--format json]
  seldon learn  <path...> [--seed <spec.txt>] [--out <learned.txt>]";

/// Recursively collects `.py` files under each path.
fn collect_py_files(paths: &[PathBuf]) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    for p in paths {
        walk(p, &mut out)?;
    }
    out.sort();
    if out.is_empty() {
        return Err("no .py files found".into());
    }
    Ok(out)
}

fn walk(p: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if p.is_file() {
        if p.extension().is_some_and(|e| e == "py") {
            out.push(p.to_path_buf());
        }
        return Ok(());
    }
    if p.is_dir() {
        let entries =
            std::fs::read_dir(p).map_err(|e| format!("cannot read {}: {e}", p.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| e.to_string())?;
            walk(&entry.path(), out)?;
        }
    }
    Ok(())
}

fn load_spec(path: Option<&str>) -> Result<TaintSpec, String> {
    match path {
        Some(p) => {
            let text =
                std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?;
            TaintSpec::parse(&text).map_err(|e| e.to_string())
        }
        None => Ok(paper_seed()),
    }
}

/// Parses paths + named options from `rest`.
fn split_args<'a>(
    rest: &'a [String],
    flags: &[&str],
    options: &[&str],
) -> Result<(Vec<PathBuf>, HashMap<&'a str, &'a str>, Vec<&'a str>), String> {
    let mut paths = Vec::new();
    let mut opts = HashMap::new();
    let mut set_flags = Vec::new();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        if flags.contains(&a.as_str()) {
            set_flags.push(a.as_str());
        } else if options.contains(&a.as_str()) {
            let v = it.next().ok_or_else(|| format!("{a} needs a value"))?;
            opts.insert(a.as_str(), v.as_str());
        } else if a.starts_with('-') {
            return Err(format!("unknown option `{a}`"));
        } else {
            paths.push(PathBuf::from(a));
        }
    }
    Ok((paths, opts, set_flags))
}

fn build_graph_for(files: &[PathBuf]) -> Result<(PropagationGraph, Vec<String>), String> {
    let mut graph = PropagationGraph::new();
    let mut names = Vec::new();
    for (i, f) in files.iter().enumerate() {
        let src = std::fs::read_to_string(f)
            .map_err(|e| format!("cannot read {}: {e}", f.display()))?;
        let (g, errors) = build_source_lenient(&src, FileId(i as u32));
        for e in errors {
            eprintln!("warning: {}: {e}", f.display());
        }
        graph.union(&g);
        names.push(f.display().to_string());
    }
    Ok((graph, names))
}

fn cmd_graph(rest: &[String]) -> Result<(), String> {
    let (paths, _, flags) = split_args(rest, &["--dot"], &[])?;
    let files = collect_py_files(&paths)?;
    let (graph, _) = build_graph_for(&files)?;
    if flags.contains(&"--dot") {
        print!("{}", to_dot(&graph, &HashMap::new()));
    } else {
        println!("{} events, {} edges", graph.event_count(), graph.edge_count());
        for (id, event) in graph.events() {
            println!("  {id} [{}] {} (line {})", event.kind, event.rep(), event.span.line);
        }
        for (from, to) in graph.edges() {
            println!("  {} -> {}", graph.event(from).rep(), graph.event(to).rep());
        }
    }
    Ok(())
}

fn cmd_check(rest: &[String]) -> Result<(), String> {
    let (paths, opts, flags) =
        split_args(rest, &["--param-sensitive"], &["--spec", "--format"])?;
    let spec = load_spec(opts.get("--spec").copied())?;
    let files = collect_py_files(&paths)?;
    let (graph, names) = build_graph_for(&files)?;
    let analyzer = TaintAnalyzer::with_options(
        &graph,
        &spec,
        TaintOptions { param_sensitive: flags.contains(&"--param-sensitive") },
    );
    let violations = analyzer.find_violations();
    if opts.get("--format") == Some(&"json") {
        println!("{}", reports_to_json(&violations, &graph));
        return Ok(());
    }
    if violations.is_empty() {
        println!("no violations found in {} file(s)", names.len());
        return Ok(());
    }
    // Group reports per file for readability.
    for (i, name) in names.iter().enumerate() {
        let of_file: Vec<_> = violations
            .iter()
            .filter(|v| v.file == FileId(i as u32))
            .cloned()
            .collect();
        if of_file.is_empty() {
            continue;
        }
        println!("== {name} ==");
        print!("{}", render_reports(&of_file, &graph));
    }
    println!("{} violation(s) total", violations.len());
    Ok(())
}

fn cmd_learn(rest: &[String]) -> Result<(), String> {
    let (paths, opts, _) = split_args(rest, &[], &["--seed", "--out", "--cutoff"])?;
    let seed = load_spec(opts.get("--seed").copied())?;
    let files = collect_py_files(&paths)?;
    let (graph, names) = build_graph_for(&files)?;
    eprintln!(
        "analyzed {} files: {} events, {} edges",
        names.len(),
        graph.event_count(),
        graph.edge_count()
    );
    let cutoff: usize = opts
        .get("--cutoff")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if names.len() < 50 { 2 } else { 5 });
    let options = SeldonOptions {
        gen: GenOptions { rep_cutoff: cutoff, ..Default::default() },
        ..Default::default()
    };
    let run = run_seldon(&graph, &seed, &options);
    eprintln!(
        "{} constraints over {} variables solved in {:?} ({} iterations)",
        run.system.constraint_count(),
        run.system.var_count(),
        run.solve_time,
        run.solution.iterations
    );
    let text = run.extraction.spec.to_text();
    match opts.get("--out") {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!(
                "wrote {} learned entries to {path}",
                run.extraction.spec.role_count()
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}
