//! Structured per-file outcomes of a corpus analysis.
//!
//! A fault-tolerant run (see [`FaultPolicy`](crate::FaultPolicy)) never
//! hides degradation: every file the pipeline touched gets a
//! [`FileReport`] recording whether it was analyzed cleanly, recovered
//! leniently, or quarantined — and why. The aggregate [`AnalysisReport`]
//! is what callers (and the `seldon` CLI) use to decide exit status and
//! print degradation summaries.

use crate::error::PipelineError;
use seldon_cache::CacheFault;
use std::fmt;

/// What happened to one corpus file during analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileOutcome {
    /// Strict parse and extraction succeeded.
    Ok,
    /// Strict parse failed; lenient recovery analyzed the file with this
    /// many statement-level errors skipped.
    Recovered {
        /// Number of front-end errors skipped during recovery.
        errors: usize,
    },
    /// The file was quarantined because of a parse failure.
    Skipped {
        /// The error that caused quarantine.
        error: PipelineError,
    },
    /// The file was quarantined because it exceeded a resource budget.
    OverBudget {
        /// The error that caused quarantine.
        error: PipelineError,
    },
    /// Analysis of the file panicked; the panic was contained and the
    /// file quarantined.
    Panicked {
        /// The error that caused quarantine.
        error: PipelineError,
    },
}

impl FileOutcome {
    /// Whether the file contributed a graph to the union (possibly with
    /// lenient recovery).
    pub fn is_analyzed(&self) -> bool {
        matches!(self, FileOutcome::Ok | FileOutcome::Recovered { .. })
    }

    /// Whether the file was excluded from the union.
    pub fn is_quarantined(&self) -> bool {
        !self.is_analyzed()
    }
}

/// Outcome of one corpus file, with its identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileReport {
    /// Index of the project the file belongs to.
    pub project: usize,
    /// The file's path within the corpus.
    pub path: String,
    /// What happened to it.
    pub outcome: FileOutcome,
}

/// One detected-and-contained artifact-cache fault, attributed to the
/// pipeline item whose lookup hit it.
///
/// Cache faults ride in the same report as per-file analysis faults, but
/// they do **not** degrade a run: a quarantined entry costs a recompute
/// that produces the exact result a cold run would have, so
/// [`AnalysisReport::is_degraded`] ignores them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheFaultReport {
    /// What the lookup was serving: a corpus file path, or a pseudo-item
    /// like `<checkpoint>` / `<index>` for run-level cache files.
    pub path: String,
    /// The contained fault, as classified by the cache.
    pub fault: CacheFault,
}

/// Aggregate per-file outcomes of one corpus analysis.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalysisReport {
    /// One entry per corpus file, in corpus order.
    pub files: Vec<FileReport>,
    /// Artifact-cache faults detected (and recovered from) during the
    /// run; empty when no cache is attached or the cache is healthy.
    pub cache_faults: Vec<CacheFaultReport>,
}

impl AnalysisReport {
    /// Number of files analyzed strictly with no degradation.
    pub fn ok(&self) -> usize {
        self.files.iter().filter(|f| f.outcome == FileOutcome::Ok).count()
    }

    /// Number of files recovered leniently.
    pub fn recovered(&self) -> usize {
        self.files
            .iter()
            .filter(|f| matches!(f.outcome, FileOutcome::Recovered { .. }))
            .count()
    }

    /// Number of files quarantined for parse failures.
    pub fn skipped(&self) -> usize {
        self.files
            .iter()
            .filter(|f| matches!(f.outcome, FileOutcome::Skipped { .. }))
            .count()
    }

    /// Number of files quarantined for budget violations.
    pub fn over_budget(&self) -> usize {
        self.files
            .iter()
            .filter(|f| matches!(f.outcome, FileOutcome::OverBudget { .. }))
            .count()
    }

    /// Number of files whose analysis panicked.
    pub fn panicked(&self) -> usize {
        self.files
            .iter()
            .filter(|f| matches!(f.outcome, FileOutcome::Panicked { .. }))
            .count()
    }

    /// Whether any file was degraded (recovered or quarantined).
    pub fn is_degraded(&self) -> bool {
        self.files.iter().any(|f| f.outcome != FileOutcome::Ok)
    }

    /// Files excluded from the graph union.
    pub fn quarantined(&self) -> impl Iterator<Item = &FileReport> {
        self.files.iter().filter(|f| f.outcome.is_quarantined())
    }

    /// One-line degradation summary, e.g. for CLI stderr.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "{} file(s): {} ok, {} recovered, {} skipped, {} over budget, {} panicked",
            self.files.len(),
            self.ok(),
            self.recovered(),
            self.skipped(),
            self.over_budget(),
            self.panicked(),
        );
        if !self.cache_faults.is_empty() {
            line.push_str(&format!(
                "; {} cache fault(s) contained",
                self.cache_faults.len()
            ));
        }
        line
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.summary())?;
        for file in self.files.iter().filter(|f| f.outcome != FileOutcome::Ok) {
            match &file.outcome {
                FileOutcome::Ok => {}
                FileOutcome::Recovered { errors } => {
                    writeln!(f, "  recovered {} ({errors} errors skipped)", file.path)?
                }
                FileOutcome::Skipped { error }
                | FileOutcome::OverBudget { error }
                | FileOutcome::Panicked { error } => {
                    writeln!(f, "  quarantined {}: {error}", file.path)?
                }
            }
        }
        for cf in &self.cache_faults {
            writeln!(f, "  cache fault ({}): {}", cf.path, cf.fault)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> AnalysisReport {
        AnalysisReport {
            files: vec![
                FileReport { project: 0, path: "a.py".into(), outcome: FileOutcome::Ok },
                FileReport {
                    project: 0,
                    path: "b.py".into(),
                    outcome: FileOutcome::Recovered { errors: 2 },
                },
                FileReport {
                    project: 1,
                    path: "c.py".into(),
                    outcome: FileOutcome::Skipped {
                        error: PipelineError::Parse {
                            path: "c.py".into(),
                            message: "bad".into(),
                        },
                    },
                },
                FileReport {
                    project: 1,
                    path: "d.py".into(),
                    outcome: FileOutcome::Panicked {
                        error: PipelineError::Panicked {
                            path: "d.py".into(),
                            message: "boom".into(),
                        },
                    },
                },
            ],
            cache_faults: Vec::new(),
        }
    }

    #[test]
    fn counts() {
        let r = report();
        assert_eq!(r.ok(), 1);
        assert_eq!(r.recovered(), 1);
        assert_eq!(r.skipped(), 1);
        assert_eq!(r.over_budget(), 0);
        assert_eq!(r.panicked(), 1);
        assert!(r.is_degraded());
        assert_eq!(r.quarantined().count(), 2);
    }

    #[test]
    fn clean_report_not_degraded() {
        let r = AnalysisReport {
            files: vec![FileReport {
                project: 0,
                path: "a.py".into(),
                outcome: FileOutcome::Ok,
            }],
            cache_faults: Vec::new(),
        };
        assert!(!r.is_degraded());
        assert_eq!(r.quarantined().count(), 0);
    }

    #[test]
    fn cache_faults_do_not_degrade() {
        use seldon_cache::FaultClass;
        let mut r = AnalysisReport {
            files: vec![FileReport {
                project: 0,
                path: "a.py".into(),
                outcome: FileOutcome::Ok,
            }],
            cache_faults: Vec::new(),
        };
        r.cache_faults.push(CacheFaultReport {
            path: "a.py".into(),
            fault: CacheFault {
                entry: "0123456789abcdef.entry".into(),
                class: FaultClass::Corrupt,
                detail: "checksum mismatch".into(),
            },
        });
        assert!(!r.is_degraded(), "cache faults recompute, never degrade");
        assert!(r.summary().contains("1 cache fault(s) contained"));
        let text = r.to_string();
        assert!(text.contains("cache fault (a.py)"));
        assert!(text.contains("checksum mismatch"));
    }

    #[test]
    fn summary_and_display() {
        let r = report();
        assert_eq!(
            r.summary(),
            "4 file(s): 1 ok, 1 recovered, 1 skipped, 0 over budget, 1 panicked"
        );
        let text = r.to_string();
        assert!(text.contains("recovered b.py (2 errors skipped)"));
        assert!(text.contains("quarantined c.py"));
        assert!(text.contains("quarantined d.py"));
        assert!(!text.contains("a.py"));
    }
}
