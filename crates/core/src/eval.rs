//! Evaluation against corpus ground truth: specification precision (§7.3,
//! Tab. 5) and report classification (§7.5 Q4, Tab. 6/7).
//!
//! The paper estimated precision by manually inspecting random samples;
//! the synthetic corpus records exact ground truth, so the same metrics are
//! computed automatically here.

use crate::pipeline::AnalyzedCorpus;
use seldon_corpus::{Corpus, FlowKind, Universe};
use seldon_specs::{Role, TaintSpec};
use seldon_taint::Violation;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// Whether two representations refer to the same API: exact match or a
/// dot-boundary suffix relationship in either direction.
pub fn reps_match(a: &str, b: &str) -> bool {
    if a == b {
        return true;
    }
    (a.len() > b.len() && a.ends_with(b) && a.as_bytes()[a.len() - b.len() - 1] == b'.')
        || (b.len() > a.len() && b.ends_with(a) && b.as_bytes()[b.len() - a.len() - 1] == b'.')
}

/// Exact role ground truth for the corpus: the API universe plus derived
/// app-level wrappers.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    universe: Universe,
    derived: HashMap<String, Role>,
}

impl GroundTruth {
    /// Builds ground truth for `corpus`.
    pub fn new(universe: &Universe, corpus: &Corpus) -> Self {
        GroundTruth {
            universe: universe.clone(),
            derived: corpus.derived_roles.iter().cloned().collect(),
        }
    }

    /// The true role of a representation, if it refers to a known API.
    ///
    /// Representations anchored at a Django-style `request` view parameter
    /// (`handler(param request).GET.get()`) are normalized to the plain
    /// `request.…` chain before lookup — the view parameter *is* the
    /// request object, so anything read off it is attacker-controlled.
    pub fn role_of(&self, rep: &str) -> Option<Role> {
        if let Some(&r) = self.derived.get(rep) {
            return Some(r);
        }
        if let Some(r) = self.universe.role_of_rep(rep) {
            return Some(r);
        }
        const MARKER: &str = "(param request)";
        if let Some(pos) = rep.find(MARKER) {
            let suffix = &rep[pos + MARKER.len()..];
            let normalized = format!("request{suffix}");
            if normalized == "request" {
                // The request object itself: a source.
                return Some(Role::Source);
            }
            return self.universe.role_of_rep(&normalized);
        }
        None
    }

    /// Whether `(rep, role)` is a true positive.
    pub fn is_correct(&self, rep: &str, role: Role) -> bool {
        self.role_of(rep) == Some(role)
    }
}

/// Predicted/correct counts for one role.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoleEval {
    /// Number of predicted entries.
    pub predicted: usize,
    /// Number of true positives.
    pub correct: usize,
}

impl RoleEval {
    /// Precision (1.0 when nothing was predicted).
    pub fn precision(&self) -> f64 {
        if self.predicted == 0 {
            1.0
        } else {
            self.correct as f64 / self.predicted as f64
        }
    }
}

/// Per-role and overall precision of a learned specification.
#[derive(Debug, Clone, Default)]
pub struct SpecEval {
    /// Per-role counts.
    pub by_role: BTreeMap<Role, RoleEval>,
}

impl SpecEval {
    /// Total predicted entries.
    pub fn predicted(&self) -> usize {
        self.by_role.values().map(|r| r.predicted).sum()
    }

    /// Total true positives.
    pub fn correct(&self) -> usize {
        self.by_role.values().map(|r| r.correct).sum()
    }

    /// Overall precision.
    pub fn precision(&self) -> f64 {
        if self.predicted() == 0 {
            1.0
        } else {
            self.correct() as f64 / self.predicted() as f64
        }
    }
}

/// Evaluates every entry of a learned spec against ground truth.
pub fn evaluate_spec(spec: &TaintSpec, truth: &GroundTruth) -> SpecEval {
    let mut eval = SpecEval::default();
    for (rep, roles) in spec.iter() {
        for role in roles.iter() {
            let e = eval.by_role.entry(role).or_default();
            e.predicted += 1;
            if truth.is_correct(rep, role) {
                e.correct += 1;
            }
        }
    }
    eval
}

/// The paper's Tab. 6 report categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ReportClass {
    /// A genuine, exploitable vulnerability.
    TrueVulnerability,
    /// A real tainted flow that is not exploitable in context.
    VulnerableNoBug,
    /// The reported sink is not actually a sink.
    IncorrectSink,
    /// The reported source is not actually a source.
    IncorrectSource,
    /// Both endpoints are wrong.
    IncorrectSourceAndSink,
    /// The flow is protected by a sanitizer the spec does not know.
    MissingSanitizer,
    /// Taint flows into a harmless parameter of a real sink.
    WrongParameter,
}

impl ReportClass {
    /// All categories in the paper's Tab. 6 row order.
    pub const ALL: [ReportClass; 7] = [
        ReportClass::TrueVulnerability,
        ReportClass::VulnerableNoBug,
        ReportClass::IncorrectSink,
        ReportClass::IncorrectSource,
        ReportClass::IncorrectSourceAndSink,
        ReportClass::MissingSanitizer,
        ReportClass::WrongParameter,
    ];
}

impl fmt::Display for ReportClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReportClass::TrueVulnerability => "True vulnerabilities",
            ReportClass::VulnerableNoBug => "Vulnerable flow, but no bug",
            ReportClass::IncorrectSink => "Incorrect sink",
            ReportClass::IncorrectSource => "Incorrect source",
            ReportClass::IncorrectSourceAndSink => "Incorrect source and sink",
            ReportClass::MissingSanitizer => "Missing sanitizer",
            ReportClass::WrongParameter => "Flows into wrong parameter",
        };
        f.write_str(s)
    }
}

/// Classifies one violation against ground truth.
pub fn classify_violation(
    v: &Violation,
    analyzed: &AnalyzedCorpus,
    corpus: &Corpus,
    truth: &GroundTruth,
) -> ReportClass {
    let src_ok = truth.role_of(&v.source_rep) == Some(Role::Source);
    let snk_ok = truth.role_of(&v.sink_rep) == Some(Role::Sink);
    match (src_ok, snk_ok) {
        (false, false) => return ReportClass::IncorrectSourceAndSink,
        (true, false) => return ReportClass::IncorrectSink,
        (false, true) => return ReportClass::IncorrectSource,
        (true, true) => {}
    }
    // Both endpoints genuine: consult the generated flow truths of the file.
    let meta = &analyzed.files[v.file.0 as usize];
    let file_flows: Vec<&seldon_corpus::FlowTruth> = corpus
        .flows
        .iter()
        .filter(|f| f.project == meta.project && f.file == meta.path)
        .collect();
    // Primary: match source and sink; fallback: sink only (the learned
    // source may be a prefix read or wrapper of the recorded source API).
    let matched: Vec<&&seldon_corpus::FlowTruth> = {
        let both: Vec<_> = file_flows
            .iter()
            .filter(|f| {
                f.source.is_some_and(|s| flow_endpoint_matches(s, &v.source_rep))
                    && f.sink.is_some_and(|s| reps_match(s, &v.sink_rep))
            })
            .collect();
        if both.is_empty() {
            file_flows
                .iter()
                .filter(|f| f.sink.is_some_and(|s| reps_match(s, &v.sink_rep)))
                .collect()
        } else {
            both
        }
    };
    let mut best: Option<ReportClass> = None;
    for flow in matched {
        let class = match flow.kind {
            FlowKind::Vulnerable { exploitable: true } => ReportClass::TrueVulnerability,
            FlowKind::Vulnerable { exploitable: false } => ReportClass::VulnerableNoBug,
            FlowKind::WrongParam => ReportClass::WrongParameter,
            FlowKind::Sanitized => ReportClass::MissingSanitizer,
            FlowKind::SafeLiteral | FlowKind::Noise => ReportClass::VulnerableNoBug,
        };
        // Prefer the most severe explanation available.
        best = Some(match (best, class) {
            (None, c) => c,
            (Some(ReportClass::TrueVulnerability), _) => ReportClass::TrueVulnerability,
            (_, ReportClass::TrueVulnerability) => ReportClass::TrueVulnerability,
            (Some(prev), _) => prev,
        });
    }
    best.unwrap_or(ReportClass::VulnerableNoBug)
}

/// Whether a violation endpoint representation refers to the recorded flow
/// endpoint: suffix tolerance, chain-prefix tolerance (a `request.args`
/// read is part of the `request.args.get()` source), and Django-style
/// `(param request)` normalization.
fn flow_endpoint_matches(truth_rep: &str, violation_rep: &str) -> bool {
    if reps_match(truth_rep, violation_rep) {
        return true;
    }
    let normalized: String;
    let vrep = match violation_rep.find("(param request)") {
        Some(pos) => {
            normalized = format!("request{}", &violation_rep[pos + "(param request)".len()..]);
            normalized.as_str()
        }
        None => violation_rep,
    };
    if reps_match(truth_rep, vrep) {
        return true;
    }
    // Chain-prefix: vrep is a prefix of truth_rep (or of one of its dot
    // suffixes) at a `.`/`[` boundary.
    let mut candidates = vec![truth_rep];
    let mut rest = truth_rep;
    while let Some(pos) = rest.find('.') {
        rest = &rest[pos + 1..];
        candidates.push(rest);
    }
    candidates.iter().any(|full| {
        full.len() > vrep.len()
            && full.starts_with(vrep)
            && matches!(full.as_bytes()[vrep.len()], b'.' | b'[')
    })
}

/// Classified report summary (Tab. 6 / Tab. 7 inputs).
#[derive(Debug, Clone, Default)]
pub struct ReportSummary {
    /// Count per category.
    pub counts: BTreeMap<ReportClass, usize>,
    /// Total classified reports.
    pub total: usize,
    /// Distinct projects with at least one report.
    pub projects_affected: usize,
}

impl ReportSummary {
    /// Fraction of reports in `class`.
    pub fn fraction(&self, class: ReportClass) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            *self.counts.get(&class).unwrap_or(&0) as f64 / self.total as f64
        }
    }

    /// Estimated number of true vulnerabilities among `population` reports,
    /// scaled by this (sample) summary's true-positive rate — the paper's
    /// Tab. 7 estimate.
    pub fn estimate_true_vulnerabilities(&self, population: usize) -> usize {
        (population as f64 * self.fraction(ReportClass::TrueVulnerability)).round() as usize
    }
}

/// Classifies all `violations` and summarizes them.
pub fn classify_all(
    violations: &[Violation],
    analyzed: &AnalyzedCorpus,
    corpus: &Corpus,
    truth: &GroundTruth,
) -> (Vec<ReportClass>, ReportSummary) {
    let mut classes = Vec::with_capacity(violations.len());
    let mut summary = ReportSummary::default();
    let mut projects = HashSet::new();
    for v in violations {
        let c = classify_violation(v, analyzed, corpus, truth);
        *summary.counts.entry(c).or_insert(0) += 1;
        summary.total += 1;
        projects.insert(analyzed.files[v.file.0 as usize].project);
        classes.push(c);
    }
    summary.projects_affected = projects.len();
    (classes, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::analyze_corpus;
    use seldon_corpus::{generate_corpus, CorpusOptions};
    use seldon_taint::TaintAnalyzer;

    fn setup() -> (Universe, Corpus, AnalyzedCorpus, GroundTruth) {
        let u = Universe::new();
        let c = generate_corpus(&u, &CorpusOptions { projects: 10, ..Default::default() });
        let a = analyze_corpus(&c, 2).unwrap();
        let t = GroundTruth::new(&u, &c);
        (u, c, a, t)
    }

    #[test]
    fn reps_match_rules() {
        assert!(reps_match("a.b.c()", "b.c()"));
        assert!(reps_match("b.c()", "a.b.c()"));
        assert!(reps_match("x()", "x()"));
        assert!(!reps_match("ab.c()", "b.c()"));
        assert!(!reps_match("a.b()", "a.c()"));
    }

    #[test]
    fn ground_truth_includes_derived_helpers() {
        let (_, c, _, t) = setup();
        if let Some((rep, role)) = c.derived_roles.first() {
            assert_eq!(t.role_of(rep), Some(*role));
        }
        assert_eq!(t.role_of("flask.request.args.get()"), Some(Role::Source));
        assert_eq!(t.role_of("made.up.api()"), None);
    }

    #[test]
    fn spec_eval_counts() {
        let (_, c, _, t) = setup();
        let _ = c;
        let mut spec = TaintSpec::new();
        spec.add("htmlutils.sanitize()", Role::Sanitizer); // correct
        spec.add("textutils.wrap()", Role::Source); // wrong (no role)
        spec.add("webresp.render_page()", Role::Sink); // correct
        let eval = evaluate_spec(&spec, &t);
        assert_eq!(eval.predicted(), 3);
        assert_eq!(eval.correct(), 2);
        assert!((eval.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(eval.by_role[&Role::Sanitizer].predicted, 1);
        assert_eq!(eval.by_role[&Role::Sanitizer].correct, 1);
    }

    #[test]
    fn oracle_spec_reports_classify_sensibly() {
        let (u, c, a, t) = setup();
        // Oracle spec: all true roles (including derived helpers).
        let mut oracle = TaintSpec::new();
        for api in u.apis() {
            if let Some(role) = api.role {
                oracle.add(api.rep, role);
            }
        }
        for (rep, role) in &c.derived_roles {
            oracle.add(rep.clone(), *role);
        }
        let analyzer = TaintAnalyzer::new(&a.graph, &oracle);
        let violations = analyzer.find_violations();
        assert!(!violations.is_empty(), "corpus must contain vulnerabilities");
        let (classes, summary) = classify_all(&violations, &a, &c, &t);
        assert_eq!(classes.len(), violations.len());
        assert_eq!(summary.total, violations.len());
        assert!(summary.projects_affected > 0);
        // With the oracle spec there are no incorrect endpoints...
        assert_eq!(summary.fraction(ReportClass::IncorrectSink), 0.0);
        assert_eq!(summary.fraction(ReportClass::IncorrectSource), 0.0);
        // ...no missing sanitizers...
        assert_eq!(summary.fraction(ReportClass::MissingSanitizer), 0.0);
        // ...and reports are genuine tainted flows or wrong-parameter
        // flows into real sinks (the analysis does not distinguish
        // parameters, §3.3).
        let genuine = summary.fraction(ReportClass::TrueVulnerability)
            + summary.fraction(ReportClass::VulnerableNoBug)
            + summary.fraction(ReportClass::WrongParameter);
        assert!(genuine > 0.95, "genuine fraction = {genuine}: {:?}", summary.counts);
    }

    #[test]
    fn seed_spec_misses_learnable_sanitizers() {
        let (u, c, a, t) = setup();
        let seed = u.seed_spec();
        let analyzer = TaintAnalyzer::new(&a.graph, &seed);
        let violations = analyzer.find_violations();
        let (_, summary) = classify_all(&violations, &a, &c, &t);
        // Sanitized flows protected by *learnable* sanitizers show up as
        // missing-sanitizer false positives under the seed spec (Tab. 6's
        // 40% row).
        assert!(
            summary.counts.get(&ReportClass::MissingSanitizer).copied().unwrap_or(0) > 0,
            "expected missing-sanitizer reports, got {:?}",
            summary.counts
        );
    }

    #[test]
    fn estimate_scales_by_fraction() {
        let mut s = ReportSummary::default();
        s.counts.insert(ReportClass::TrueVulnerability, 5);
        s.counts.insert(ReportClass::IncorrectSink, 5);
        s.total = 10;
        assert_eq!(s.estimate_true_vulnerabilities(1000), 500);
        assert!((s.fraction(ReportClass::TrueVulnerability) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn report_class_display() {
        assert_eq!(ReportClass::MissingSanitizer.to_string(), "Missing sanitizer");
        assert_eq!(ReportClass::ALL.len(), 7);
    }
}
