//! # seldon-core
//!
//! End-to-end pipeline of the Seldon reproduction ("Scalable Taint
//! Specification Inference with Big Code", PLDI 2019): corpus analysis
//! (parse → per-file propagation graphs → global graph), constraint
//! generation, projected-Adam solving, specification extraction, taint
//! analysis, and exact evaluation against corpus ground truth.
//!
//! ## Quickstart
//!
//! ```
//! use seldon_core::{analyze_corpus, run_seldon, SeldonOptions};
//! use seldon_corpus::{generate_corpus, CorpusOptions, Universe};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let universe = Universe::new();
//! let corpus = generate_corpus(
//!     &universe,
//!     &CorpusOptions { projects: 4, ..Default::default() },
//! );
//! let analyzed = analyze_corpus(&corpus, 2)?;
//! let run = run_seldon(&analyzed.graph, &universe.seed_spec(), &SeldonOptions::default());
//! assert!(run.system.constraint_count() > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod eval;
pub mod manifest;
pub mod pipeline;
pub mod report;

pub use error::PipelineError;
pub use eval::{
    classify_all, classify_violation, evaluate_spec, reps_match, GroundTruth, ReportClass,
    ReportSummary, RoleEval, SpecEval,
};
pub use manifest::{run_full, FullRun};
pub use pipeline::{
    analysis_cache_key, analyze_corpus, analyze_corpus_with, analyze_file, analyze_project,
    run_seldon, run_seldon_cached, run_seldon_traced, AnalyzeOptions, AnalyzedCorpus,
    CheckpointOutcome, CheckpointUse, FaultPolicy, FileAnalysis, FileMeta, Frontend,
    SeldonOptions, SeldonRun, WarmStartOptions, DEFAULT_TRACE_STRIDE, DEFAULT_WARM_MARGIN,
};
pub use report::{AnalysisReport, CacheFaultReport, FileOutcome, FileReport};
